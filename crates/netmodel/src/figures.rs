//! Figure assembly: every table and figure of the paper as a
//! paper-vs-model data structure, plus a plain-text renderer used by the
//! `figures` binary in `caf-bench`.

use crate::cgpop::{self, Mode};
use crate::paperdata as pd;
use crate::platform::{Substrate, EDISON, FUSION, MIRA};
use crate::{fft, hpl, memory, micro, ra};

/// One plotted series: paired model and paper values over the x sweep
/// (paper values may be absent for points the paper did not report).
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Modeled values, one per x.
    pub model: Vec<f64>,
    /// Published values (`None` where the paper has no point).
    pub paper: Vec<Option<f64>>,
}

impl Series {
    /// The paper's IDEAL-SCALE guide line: the first measured CAF-MPI
    /// point scaled linearly with the process count.
    fn ideal(xs: &[usize], first_value: f64) -> Series {
        let p0 = xs[0] as f64;
        let vals: Vec<f64> = xs.iter().map(|&p| first_value * p as f64 / p0).collect();
        Series {
            label: "IDEAL-SCALE".to_string(),
            model: vals.clone(),
            paper: vals.into_iter().map(Some).collect(),
        }
    }

    fn new(label: &str, model: Vec<f64>, paper: &[f64]) -> Series {
        assert_eq!(model.len(), paper.len());
        Series {
            label: label.to_string(),
            model,
            paper: paper.iter().copied().map(Some).collect(),
        }
    }

    fn with_partial_paper(label: &str, model: Vec<f64>, paper: Vec<Option<f64>>) -> Series {
        assert_eq!(model.len(), paper.len());
        Series {
            label: label.to_string(),
            model,
            paper,
        }
    }
}

/// One regenerated figure or table.
#[derive(Debug, Clone)]
pub struct Figure {
    /// Identifier, e.g. `"fig3"`.
    pub id: &'static str,
    /// Title as in the paper.
    pub title: String,
    /// X-axis label.
    pub xlabel: &'static str,
    /// Y-axis label.
    pub ylabel: &'static str,
    /// X values (process counts or categories mapped to indices).
    pub xs: Vec<usize>,
    /// The series.
    pub series: Vec<Series>,
}

impl Figure {
    /// Serialize to a pretty-printed JSON object (for plotting
    /// pipelines). Hand-rolled so the model crate carries no
    /// serialization dependency.
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len());
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out
        }
        fn num(v: f64) -> String {
            if !v.is_finite() {
                "null".to_string()
            } else if v == v.trunc() && v.abs() < 1e15 {
                format!("{v:.1}")
            } else {
                format!("{v}")
            }
        }
        fn list<T, F: Fn(&T) -> String>(items: &[T], f: F) -> String {
            let inner: Vec<String> = items.iter().map(f).collect();
            format!("[{}]", inner.join(", "))
        }
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"id\": \"{}\",", esc(self.id));
        let _ = writeln!(out, "  \"title\": \"{}\",", esc(&self.title));
        let _ = writeln!(out, "  \"xlabel\": \"{}\",", esc(self.xlabel));
        let _ = writeln!(out, "  \"ylabel\": \"{}\",", esc(self.ylabel));
        let _ = writeln!(out, "  \"xs\": {},", list(&self.xs, |x| x.to_string()));
        let _ = writeln!(out, "  \"series\": [");
        for (si, s) in self.series.iter().enumerate() {
            let _ = writeln!(out, "    {{");
            let _ = writeln!(out, "      \"label\": \"{}\",", esc(&s.label));
            let _ = writeln!(out, "      \"model\": {},", list(&s.model, |v| num(*v)));
            let _ = writeln!(
                out,
                "      \"paper\": {}",
                list(&s.paper, |v| v.map_or_else(|| "null".to_string(), num))
            );
            let comma = if si + 1 < self.series.len() { "," } else { "" };
            let _ = writeln!(out, "    }}{comma}");
        }
        let _ = writeln!(out, "  ]");
        let _ = write!(out, "}}");
        out
    }

    /// Render as a plain-text table: one row per x, `model/paper` pairs
    /// per series.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==", self.id, self.title);
        let _ = write!(out, "{:>10}", self.xlabel);
        for s in &self.series {
            let _ = write!(out, " | {:>24}", s.label);
        }
        let _ = writeln!(out);
        let _ = write!(out, "{:>10}", "");
        for _ in &self.series {
            let _ = write!(out, " | {:>11} {:>12}", "model", "paper");
        }
        let _ = writeln!(out);
        for (i, &x) in self.xs.iter().enumerate() {
            let _ = write!(out, "{x:>10}");
            for s in &self.series {
                match s.paper[i] {
                    Some(p) => {
                        let _ = write!(out, " | {:>11.4} {:>12.4}", s.model[i], p);
                    }
                    None => {
                        let _ = write!(out, " | {:>11.4} {:>12}", s.model[i], "-");
                    }
                }
            }
            let _ = writeln!(out);
        }
        let _ = writeln!(out, "{}", self.ylabel);
        out
    }
}

/// Figure 1: mapped memory of GASNet-only / MPI-only / duplicate runtimes.
pub fn fig1_memory() -> Figure {
    let ps = pd::MEM_P.to_vec();
    Figure {
        id: "fig1",
        title: "Per-process mapped memory when initializing one or both runtimes".into(),
        xlabel: "processes",
        ylabel: "mapped memory (MB)",
        xs: ps.clone(),
        series: vec![
            Series::new(
                "GASNet-only",
                ps.iter().map(|&p| memory::gasnet_mb(p)).collect(),
                &pd::MEM_GASNET_ONLY,
            ),
            Series::new(
                "MPI-only",
                ps.iter().map(|&p| memory::mpi_mb(p)).collect(),
                &pd::MEM_MPI_ONLY,
            ),
            Series::new(
                "Duplicate runtimes",
                ps.iter().map(|&p| memory::duplicate_mb(p)).collect(),
                &pd::MEM_DUPLICATE,
            ),
        ],
    }
}

/// Figure 3: RandomAccess on Fusion (with the SRQ dip and NOSRQ).
pub fn fig3_ra_fusion() -> Figure {
    let ps = pd::FUSION_P.to_vec();
    Figure {
        id: "fig3",
        title: "RandomAccess on Fusion (GUP/s)".into(),
        xlabel: "processes",
        ylabel: "GUP/s",
        xs: ps.clone(),
        series: vec![
            Series::new(
                "CAF-MPI",
                ra::gups_series(&FUSION, Substrate::Mpi, &ps, false),
                &pd::RA_FUSION_MPI,
            ),
            Series::new(
                "CAF-GASNet",
                ra::gups_series(&FUSION, Substrate::Gasnet, &ps, false),
                &pd::RA_FUSION_GASNET,
            ),
            Series::new(
                "CAF-GASNet-NOSRQ",
                ra::gups_series(&FUSION, Substrate::Gasnet, &ps, true),
                &pd::RA_FUSION_GASNET_NOSRQ,
            ),
            Series::ideal(&ps, pd::RA_FUSION_MPI[0]),
        ],
    }
}

/// Figure 4: RandomAccess time decomposition at 2048 cores on Fusion.
pub fn fig4_ra_decomposition() -> Figure {
    let mpi = ra::decomposition(&FUSION, Substrate::Mpi, 2048);
    let gas = ra::decomposition(&FUSION, Substrate::Gasnet, 2048);
    Figure {
        id: "fig4",
        title: "RandomAccess time decomposition @2048 cores on Fusion (seconds)".into(),
        xlabel: "category",
        ylabel: "seconds (categories: 0=computation 1=coarray_write 2=event_wait 3=event_notify)",
        xs: (0..4).collect(),
        series: vec![
            Series::new("CAF-GASNet", gas.to_vec(), &pd::RA_DECOMP_GASNET),
            Series::new("CAF-MPI", mpi.to_vec(), &pd::RA_DECOMP_MPI),
        ],
    }
}

/// Figure 5: RandomAccess on Edison.
pub fn fig5_ra_edison() -> Figure {
    let ps = pd::EDISON_P.to_vec();
    Figure {
        id: "fig5",
        title: "RandomAccess on Edison (GUP/s)".into(),
        xlabel: "processes",
        ylabel: "GUP/s",
        xs: ps.clone(),
        series: vec![
            Series::new(
                "CAF-MPI",
                ra::gups_series(&EDISON, Substrate::Mpi, &ps, false),
                &pd::RA_EDISON_MPI,
            ),
            Series::new(
                "CAF-GASNet",
                ra::gups_series(&EDISON, Substrate::Gasnet, &ps, false),
                &pd::RA_EDISON_GASNET,
            ),
            Series::ideal(&ps, pd::RA_EDISON_MPI[0]),
        ],
    }
}

/// Figure 6: FFT on Fusion.
pub fn fig6_fft_fusion() -> Figure {
    let ps = pd::FUSION_P.to_vec();
    Figure {
        id: "fig6",
        title: "FFT on Fusion (GFlop/s)".into(),
        xlabel: "processes",
        ylabel: "GFlop/s",
        xs: ps.clone(),
        series: vec![
            Series::new(
                "CAF-MPI",
                fft::gflops_series(&FUSION, Substrate::Mpi, &ps),
                &pd::FFT_FUSION_MPI,
            ),
            Series::new(
                "CAF-GASNet",
                fft::gflops_series(&FUSION, Substrate::Gasnet, &ps),
                &pd::FFT_FUSION_GASNET,
            ),
            Series::new(
                "CAF-GASNet-NOSRQ",
                // Bulk transfers bypass the SRQ path; the model treats
                // NOSRQ as identical for FFT, as the paper's data shows.
                fft::gflops_series(&FUSION, Substrate::Gasnet, &ps),
                &pd::FFT_FUSION_GASNET_NOSRQ,
            ),
            Series::ideal(&ps, pd::FFT_FUSION_MPI[0]),
        ],
    }
}

/// Figure 7: FFT on Edison.
pub fn fig7_fft_edison() -> Figure {
    let ps = pd::EDISON_P.to_vec();
    Figure {
        id: "fig7",
        title: "FFT on Edison (GFlop/s)".into(),
        xlabel: "processes",
        ylabel: "GFlop/s",
        xs: ps.clone(),
        series: vec![
            Series::new(
                "CAF-MPI",
                fft::gflops_series(&EDISON, Substrate::Mpi, &ps),
                &pd::FFT_EDISON_MPI,
            ),
            Series::new(
                "CAF-GASNet",
                fft::gflops_series(&EDISON, Substrate::Gasnet, &ps),
                &pd::FFT_EDISON_GASNET,
            ),
            Series::ideal(&ps, pd::FFT_EDISON_MPI[0]),
        ],
    }
}

/// Figure 8: FFT time decomposition at 256 cores on Fusion.
pub fn fig8_fft_decomposition() -> Figure {
    let (a2a_m, comp_m) = fft::decomposition(&FUSION, Substrate::Mpi, 256);
    let (a2a_g, comp_g) = fft::decomposition(&FUSION, Substrate::Gasnet, 256);
    // The paper's profile ran a larger problem; rescale the model to the
    // paper's computation time so the alltoall *ratios* are comparable.
    let scale = pd::FFT_DECOMP_MPI.1 / comp_m;
    Figure {
        id: "fig8",
        title: "FFT time decomposition @256 cores on Fusion (seconds)".into(),
        xlabel: "category",
        ylabel: "seconds (categories: 0=alltoall 1=computation)",
        xs: (0..2).collect(),
        series: vec![
            Series::new(
                "CAF-GASNet",
                vec![a2a_g * scale, comp_g * scale],
                &[pd::FFT_DECOMP_GASNET.0, pd::FFT_DECOMP_GASNET.1],
            ),
            Series::new(
                "CAF-MPI",
                vec![a2a_m * scale, comp_m * scale],
                &[pd::FFT_DECOMP_MPI.0, pd::FFT_DECOMP_MPI.1],
            ),
        ],
    }
}

/// Figure 9: HPL on Fusion.
pub fn fig9_hpl_fusion() -> Figure {
    let ps = pd::HPL_FUSION_P.to_vec();
    Figure {
        id: "fig9",
        title: "HPL on Fusion (TFlop/s)".into(),
        xlabel: "processes",
        ylabel: "TFlop/s",
        xs: ps.clone(),
        series: vec![
            Series::new(
                "CAF-MPI",
                hpl::tflops_series(&FUSION, Substrate::Mpi, &ps),
                &pd::HPL_FUSION_MPI,
            ),
            Series::new(
                "CAF-GASNet",
                hpl::tflops_series(&FUSION, Substrate::Gasnet, &ps),
                &pd::HPL_FUSION_GASNET,
            ),
            Series::ideal(&ps, pd::HPL_FUSION_MPI[0]),
        ],
    }
}

/// Figure 10: HPL on Edison (GASNet above 256 processes not reported in
/// the paper).
pub fn fig10_hpl_edison() -> Figure {
    let ps = pd::HPL_EDISON_P.to_vec();
    let gasnet_paper: Vec<Option<f64>> = ps
        .iter()
        .enumerate()
        .map(|(i, _)| pd::HPL_EDISON_GASNET.get(i).copied())
        .collect();
    Figure {
        id: "fig10",
        title: "HPL on Edison (TFlop/s)".into(),
        xlabel: "processes",
        ylabel: "TFlop/s",
        xs: ps.clone(),
        series: vec![
            Series::new(
                "CAF-MPI",
                hpl::tflops_series(&EDISON, Substrate::Mpi, &ps),
                &pd::HPL_EDISON_MPI,
            ),
            Series::with_partial_paper(
                "CAF-GASNet",
                hpl::tflops_series(&EDISON, Substrate::Gasnet, &ps),
                gasnet_paper,
            ),
            Series::ideal(&ps, pd::HPL_EDISON_MPI[0]),
        ],
    }
}

fn cgpop_figure(
    id: &'static str,
    plat: &crate::platform::Platform,
    paper: [&[f64; 8]; 4],
) -> Figure {
    let ps = pd::CGPOP_P.to_vec();
    let variants = [
        ("CAF-MPI (PUSH)", Substrate::Mpi, Mode::Push),
        ("CAF-MPI (PULL)", Substrate::Mpi, Mode::Pull),
        ("CAF-GASNet (PUSH)", Substrate::Gasnet, Mode::Push),
        ("CAF-GASNet (PULL)", Substrate::Gasnet, Mode::Pull),
    ];
    Figure {
        id,
        title: format!("CGPOP on {} (execution time, seconds)", plat.name),
        xlabel: "processes",
        ylabel: "seconds",
        xs: ps.clone(),
        series: variants
            .iter()
            .zip(paper)
            .map(|(&(label, sub, mode), p)| {
                Series::new(label, cgpop::time_series(plat, sub, mode, &ps), p)
            })
            .collect(),
    }
}

/// Figure 11: CGPOP on Fusion.
pub fn fig11_cgpop_fusion() -> Figure {
    cgpop_figure(
        "fig11",
        &FUSION,
        [
            &pd::CGPOP_FUSION_MPI_PUSH,
            &pd::CGPOP_FUSION_MPI_PULL,
            &pd::CGPOP_FUSION_GASNET_PUSH,
            &pd::CGPOP_FUSION_GASNET_PULL,
        ],
    )
}

/// Figure 12: CGPOP on Edison.
pub fn fig12_cgpop_edison() -> Figure {
    cgpop_figure(
        "fig12",
        &EDISON,
        [
            &pd::CGPOP_EDISON_MPI_PUSH,
            &pd::CGPOP_EDISON_MPI_PULL,
            &pd::CGPOP_EDISON_GASNET_PUSH,
            &pd::CGPOP_EDISON_GASNET_PULL,
        ],
    )
}

/// §5/§7 projection: RandomAccess on Fusion if `event_notify` could use
/// a per-target / request-based flush (`MPI_WIN_RFLUSH`) instead of the
/// Θ(P) `MPI_Win_flush_all`. No paper series exists (it is the paper's
/// future work); CAF-MPI-as-published and NOSRQ are shown for reference.
pub fn fig_rflush_projection() -> Figure {
    let ps = pd::FUSION_P.to_vec();
    let none = vec![None; ps.len()];
    Figure {
        id: "rflush",
        title: "Projected RandomAccess on Fusion with MPI_WIN_RFLUSH (§5/§7)".into(),
        xlabel: "processes",
        ylabel: "GUP/s",
        xs: ps.clone(),
        series: vec![
            Series::new(
                "CAF-MPI (flush_all)",
                ra::gups_series(&FUSION, Substrate::Mpi, &ps, false),
                &pd::RA_FUSION_MPI,
            ),
            Series::with_partial_paper(
                "CAF-MPI (RFLUSH, projected)",
                ra::gups_rflush_series(&FUSION, &ps),
                none,
            ),
            Series::new(
                "CAF-GASNet-NOSRQ",
                ra::gups_series(&FUSION, Substrate::Gasnet, &ps, true),
                &pd::RA_FUSION_GASNET_NOSRQ,
            ),
        ],
    }
}

/// The Mira microbenchmark panel.
pub fn fig_micro_mira() -> Figure {
    let ps = pd::MIRA_P.to_vec();
    let rows: [(&str, Substrate, micro::MicroOp, &[f64; 9]); 8] = [
        ("GASNet READ", Substrate::Gasnet, micro::MicroOp::Read, &pd::MIRA_GASNET_READ),
        ("GASNet WRITE", Substrate::Gasnet, micro::MicroOp::Write, &pd::MIRA_GASNET_WRITE),
        ("GASNet NOTIFY", Substrate::Gasnet, micro::MicroOp::Notify, &pd::MIRA_GASNET_NOTIFY),
        ("GASNet AlltoAll", Substrate::Gasnet, micro::MicroOp::Alltoall, &pd::MIRA_GASNET_A2A),
        ("MPI READ", Substrate::Mpi, micro::MicroOp::Read, &pd::MIRA_MPI_READ),
        ("MPI WRITE", Substrate::Mpi, micro::MicroOp::Write, &pd::MIRA_MPI_WRITE),
        ("MPI NOTIFY", Substrate::Mpi, micro::MicroOp::Notify, &pd::MIRA_MPI_NOTIFY),
        ("MPI AlltoAll", Substrate::Mpi, micro::MicroOp::Alltoall, &pd::MIRA_MPI_A2A),
    ];
    Figure {
        id: "micro-mira",
        title: "Mira microbenchmarks (ops/second)".into(),
        xlabel: "cores",
        ylabel: "ops/second",
        xs: ps.clone(),
        series: rows
            .iter()
            .map(|&(label, sub, op, paper)| {
                Series::new(label, micro::rate_series(&MIRA, sub, op, &ps), paper)
            })
            .collect(),
    }
}

/// The Edison microbenchmark panel.
pub fn fig_micro_edison() -> Figure {
    let ps = pd::EDISON_MICRO_P.to_vec();
    let rows: [(&str, Substrate, micro::MicroOp, &[f64; 8]); 8] = [
        ("GASNet READ", Substrate::Gasnet, micro::MicroOp::Read, &pd::EDISON_GASNET_READ),
        ("GASNet WRITE", Substrate::Gasnet, micro::MicroOp::Write, &pd::EDISON_GASNET_WRITE),
        ("GASNet NOTIFY", Substrate::Gasnet, micro::MicroOp::Notify, &pd::EDISON_GASNET_NOTIFY),
        ("GASNet AlltoAll", Substrate::Gasnet, micro::MicroOp::Alltoall, &pd::EDISON_GASNET_A2A),
        ("MPI READ", Substrate::Mpi, micro::MicroOp::Read, &pd::EDISON_MPI_READ),
        ("MPI WRITE", Substrate::Mpi, micro::MicroOp::Write, &pd::EDISON_MPI_WRITE),
        ("MPI NOTIFY", Substrate::Mpi, micro::MicroOp::Notify, &pd::EDISON_MPI_NOTIFY),
        ("MPI AlltoAll", Substrate::Mpi, micro::MicroOp::Alltoall, &pd::EDISON_MPI_A2A),
    ];
    Figure {
        id: "micro-edison",
        title: "Edison microbenchmarks (ops/second)".into(),
        xlabel: "cores",
        ylabel: "ops/second",
        xs: ps.clone(),
        series: rows
            .iter()
            .map(|&(label, sub, op, paper)| {
                Series::new(label, micro::rate_series(&EDISON, sub, op, &ps), paper)
            })
            .collect(),
    }
}

/// Table 1 rendered as text.
pub fn table1() -> String {
    let mut out = String::new();
    out.push_str("== table1 — Experimental platforms ==\n");
    out.push_str(
        "System            Nodes  Cores/Node  Mem/Node  Interconnect     MPI Version\n",
    );
    for p in [FUSION, EDISON] {
        out.push_str(&format!(
            "{:<16} {:>6} {:>11} {:>8}  {:<16} {}\n",
            p.name,
            p.nodes,
            p.cores_per_node,
            format!("{}GB", p.mem_per_node_gib),
            p.interconnect,
            p.mpi_version
        ));
    }
    out
}

/// Every figure, in paper order.
pub fn all_figures() -> Vec<Figure> {
    vec![
        fig1_memory(),
        fig3_ra_fusion(),
        fig4_ra_decomposition(),
        fig5_ra_edison(),
        fig6_fft_fusion(),
        fig7_fft_edison(),
        fig8_fft_decomposition(),
        fig9_hpl_fusion(),
        fig10_hpl_edison(),
        fig11_cgpop_fusion(),
        fig12_cgpop_edison(),
        fig_micro_mira(),
        fig_micro_edison(),
        fig_rflush_projection(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_figures_build_and_render() {
        let figs = all_figures();
        assert_eq!(figs.len(), 14);
        for f in &figs {
            let text = f.render();
            assert!(text.contains(f.id), "{}", f.id);
            for s in &f.series {
                assert_eq!(s.model.len(), f.xs.len());
                assert!(
                    s.model.iter().all(|v| v.is_finite() && *v >= 0.0),
                    "{} {}",
                    f.id,
                    s.label
                );
            }
        }
    }

    #[test]
    fn ideal_scale_lines_present_and_linear() {
        for fig in [fig3_ra_fusion(), fig5_ra_edison(), fig6_fft_fusion(), fig9_hpl_fusion()] {
            let ideal = fig
                .series
                .iter()
                .find(|s| s.label == "IDEAL-SCALE")
                .unwrap_or_else(|| panic!("{} missing IDEAL-SCALE", fig.id));
            // Perfectly linear in P.
            let p0 = fig.xs[0] as f64;
            for (i, &p) in fig.xs.iter().enumerate() {
                let expect = ideal.model[0] * p as f64 / p0;
                assert!((ideal.model[i] - expect).abs() < 1e-9);
            }
            // Every measured curve sits at or below ideal beyond the
            // anchor point (parallel efficiency ≤ 1).
            for s in fig.series.iter().filter(|s| s.label.starts_with("CAF")) {
                let last = fig.xs.len() - 1;
                assert!(
                    s.model[last] <= ideal.model[last] * 1.05,
                    "{} {} exceeds ideal",
                    fig.id,
                    s.label
                );
            }
        }
    }

    #[test]
    fn table1_mentions_both_machines() {
        let t = table1();
        assert!(t.contains("Fusion"));
        assert!(t.contains("Edison"));
        assert!(t.contains("MVAPICH2-1.9"));
        assert!(t.contains("CRAY-MPICH-6.0.2"));
    }

    #[test]
    fn hpl_edison_has_missing_paper_points() {
        let f = fig10_hpl_edison();
        let gasnet = &f.series[1];
        assert!(gasnet.paper[0].is_some());
        assert!(gasnet.paper[4].is_none());
    }

    #[test]
    fn figures_serialize_to_json() {
        let f = fig1_memory();
        let json = f.to_json();
        assert!(json.contains("\"id\": \"fig1\""));
        assert!(json.contains("MPI-only"));
        // Absent paper points serialize as null.
        let j10 = fig10_hpl_edison().to_json();
        assert!(j10.contains("null"));
    }

    #[test]
    fn render_contains_model_and_paper_columns() {
        let f = fig1_memory();
        let text = f.render();
        assert!(text.contains("model"));
        assert!(text.contains("paper"));
        assert!(text.contains("107"));
    }
}
