//! Microbenchmark model (the Mira and Edison rate panels).
//!
//! Point-to-point rates are simply the inverse of the per-op cost
//! (essentially flat in P — that is what the panels show); the
//! EVENT_NOTIFY microbenchmark runs with no outstanding RMA, so it
//! measures the notify *base* path; alltoall rates come from the
//! platform's alltoall cost model, which carries the congestion terms.

use crate::platform::{Platform, Substrate};

/// Which microbenchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MicroOp {
    /// Remote coarray read rate.
    Read,
    /// Remote coarray write rate.
    Write,
    /// `event_notify` rate (no outstanding RMA).
    Notify,
    /// Alltoall rate (small payload).
    Alltoall,
}

/// Modeled rate (operations per second) at job size `p`.
pub fn rate(plat: &Platform, sub: Substrate, op: MicroOp, p: usize) -> f64 {
    match op {
        MicroOp::Read => 1e9 / plat.get_ns(sub),
        MicroOp::Write => 1e9 / plat.put_ns(sub),
        MicroOp::Notify => match sub {
            // The microbenchmark issues notify with nothing outstanding:
            // flush_all degenerates to its base cost.
            Substrate::Mpi => 1e9 / plat.mpi_notify_base_ns,
            Substrate::Gasnet => 1e9 / plat.gasnet_notify_ns,
        },
        MicroOp::Alltoall => 1.0 / plat.alltoall_s(sub, p, 8.0),
    }
}

/// Rate series over a sweep of job sizes.
pub fn rate_series(plat: &Platform, sub: Substrate, op: MicroOp, ps: &[usize]) -> Vec<f64> {
    ps.iter().map(|&p| rate(plat, sub, op, p)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paperdata as pd;
    use crate::platform::{EDISON, MIRA};
    use crate::shape_error;

    fn within(model: f64, reference: f64, factor: f64) -> bool {
        (model / reference).max(reference / model) < factor
    }

    #[test]
    fn mira_p2p_rates_anchor() {
        assert!(within(
            rate(&MIRA, Substrate::Gasnet, MicroOp::Read, 64),
            pd::MIRA_GASNET_READ[2],
            1.4
        ));
        assert!(within(
            rate(&MIRA, Substrate::Mpi, MicroOp::Write, 64),
            pd::MIRA_MPI_WRITE[2],
            1.4
        ));
        assert!(within(
            rate(&MIRA, Substrate::Mpi, MicroOp::Notify, 64),
            pd::MIRA_MPI_NOTIFY[2],
            1.4
        ));
        assert!(within(
            rate(&MIRA, Substrate::Gasnet, MicroOp::Notify, 64),
            pd::MIRA_GASNET_NOTIFY[2],
            1.4
        ));
    }

    #[test]
    fn mira_alltoall_series_shape() {
        let mpi = rate_series(&MIRA, Substrate::Mpi, MicroOp::Alltoall, &pd::MIRA_P);
        let g = rate_series(&MIRA, Substrate::Gasnet, MicroOp::Alltoall, &pd::MIRA_P);
        assert!(shape_error(&mpi, &pd::MIRA_MPI_A2A) < 1.8);
        assert!(shape_error(&g, &pd::MIRA_GASNET_A2A) < 1.8);
        // The MPI/GASNet alltoall gap widens with P (tuned collective).
        assert!(mpi[8] / g[8] > mpi[0] / g[0]);
    }

    #[test]
    fn edison_alltoall_series_shape() {
        let mpi = rate_series(&EDISON, Substrate::Mpi, MicroOp::Alltoall, &pd::EDISON_MICRO_P);
        let g = rate_series(
            &EDISON,
            Substrate::Gasnet,
            MicroOp::Alltoall,
            &pd::EDISON_MICRO_P,
        );
        assert!(shape_error(&mpi, &pd::EDISON_MPI_A2A) < 2.0);
        assert!(shape_error(&g, &pd::EDISON_GASNET_A2A) < 2.0);
    }

    #[test]
    fn gasnet_p2p_beats_mpi_p2p() {
        for plat in [&MIRA, &EDISON] {
            for op in [MicroOp::Read, MicroOp::Write] {
                assert!(
                    rate(plat, Substrate::Gasnet, op, 64) > rate(plat, Substrate::Mpi, op, 64),
                    "{} {:?}",
                    plat.name,
                    op
                );
            }
        }
    }
}
