//! Repository automation (`cargo xtask <command>`, std-only).
//!
//! ## `cargo xtask lint`
//!
//! The *segment-direct* lint. Every byte that moves through a window or
//! GASNet segment must pass through the instrumented substrate entry
//! points (`crates/mpisim`, `crates/gasnetsim`, `crates/fabric`): those
//! are where the `caf-trace` events and `caf-check` sanitizer hooks
//! live. Code elsewhere that resolves a raw `Segment` handle —
//! `win_segment(...)`, `local_segment(...)`, `win_shared_query(...)`,
//! `.segment(...)` — bypasses both, so the tracer under-reports and the
//! checker goes blind to those accesses. This lint greps the workspace
//! sources and fails if any such call site exists outside the substrate
//! crates.
//!
//! A deliberate exception (there should be almost none) is marked on
//! the same line:
//!
//! ```text
//! let seg = mpi.win_segment(&win, rank)?; // lint:allow(segment-direct)
//! ```
//!
//! The same command also runs the *nondeterminism* lint. The model
//! checker (`caf-model`) replays whole jobs under the scheduler gate,
//! which only works if the runtime crates take no schedule-relevant
//! decisions from wall-clock time or raw spinning: every blocking wait
//! must go through the gated primitives. Inside the modeled crates
//! (`fabric`, `mpisim`, `gasnetsim`, `core`), non-test code must not
//! call `thread::sleep`, `Instant::now`, or `spin_loop` directly —
//! timing is centralized in `fabric/src/delay.rs` (virtual clock +
//! gated spins) and `trace/src/stall.rs` (the watchdog, inhibited under
//! model control). Scanning stops at the first `#[cfg(test)]` line of a
//! file, and a deliberate exception is marked with
//! `// lint:allow(nondeterminism)` on the same line.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Raw-segment call sites the instrumented entry points wrap. Kept as
/// suffix patterns so formatting (`foo.win_segment(`, `self.ep.segment(`)
/// doesn't matter.
const PATTERNS: &[&str] = &[
    "win_segment(",
    "local_segment(",
    "win_shared_query(",
    ".segment(",
];

/// Crates allowed to touch segments directly: the substrates themselves
/// (where the hooks live) and this tool (which spells the patterns out).
const EXEMPT: &[&str] = &["mpisim", "gasnetsim", "fabric", "xtask"];

const ALLOW_MARKER: &str = "lint:allow(segment-direct)";

/// Wall-clock and raw-spin primitives forbidden in the modeled crates:
/// each one lets a schedule depend on real time, which breaks replay
/// under the `caf-model` scheduler gate.
const ND_PATTERNS: &[&str] = &["thread::sleep", "Instant::now", "spin_loop("];

/// Crates the scheduler gate models; only these are held to the
/// nondeterminism rule (benches and the hpcc kernels time themselves on
/// purpose).
const ND_CRATES: &[&str] = &["fabric", "mpisim", "gasnetsim", "core", "agg"];

/// Files where timing is *supposed* to live: the virtual clock / gated
/// spin module and the stall watchdog.
const ND_ALLOW_FILES: &[&str] = &["delay.rs", "stall.rs"];

const ND_ALLOW_MARKER: &str = "lint:allow(nondeterminism)";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(),
        Some("bench") => bench::run(&args[1..]),
        Some(other) => {
            eprintln!("unknown xtask command `{other}`; available: lint, bench");
            ExitCode::from(2)
        }
        None => {
            eprintln!("usage: cargo xtask <lint|bench>");
            ExitCode::from(2)
        }
    }
}

/// ## `cargo xtask bench [--smoke] [--update-baseline]`
///
/// Runs the deterministic perf harness (`caf-bench`'s `bench` binary) and
/// gates its output against the committed `BENCH_ra.json` /
/// `BENCH_micro.json` / `BENCH_agg.json` baselines at the repository root.
///
/// Every gated number is a modeled count or nanosecond total from the
/// substrate delay meter — a pure function of the communication schedule,
/// identical across machines — so the gate can be tight: any gated field
/// more than [`bench::THRESHOLD`] above its baseline fails. Wall-clock
/// values live under each row's `info` object and are never compared.
/// `--smoke` runs a reduced job-size sweep whose rows are a strict subset
/// of the full baseline (same per-row workloads); `--update-baseline`
/// reseeds the committed files instead of comparing.
mod bench {
    use super::*;
    use std::collections::BTreeMap;
    use std::process::Command;

    /// Allowed relative increase of a gated field over its baseline.
    pub const THRESHOLD: f64 = 0.15;

    const FILES: [&str; 3] = ["BENCH_ra.json", "BENCH_micro.json", "BENCH_agg.json"];

    pub fn run(args: &[String]) -> ExitCode {
        let smoke = args.iter().any(|a| a == "--smoke");
        let update = args.iter().any(|a| a == "--update-baseline");
        let root = workspace_root();
        let out_dir = root.join("target").join("bench-out");
        if let Err(e) = fs::create_dir_all(&out_dir) {
            eprintln!("xtask bench: creating {}: {e}", out_dir.display());
            return ExitCode::from(2);
        }

        let mut cmd = Command::new(env!("CARGO"));
        cmd.current_dir(&root)
            .args(["run", "--release", "-q", "-p", "caf-bench", "--bin", "bench", "--"])
            .arg("--out-dir")
            .arg(&out_dir);
        if smoke && !update {
            cmd.arg("--smoke");
        }
        match cmd.status() {
            Ok(st) if st.success() => {}
            Ok(st) => {
                eprintln!("xtask bench: harness failed with {st}");
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("xtask bench: spawning cargo: {e}");
                return ExitCode::from(2);
            }
        }

        if update {
            for f in FILES {
                if let Err(e) = fs::copy(out_dir.join(f), root.join(f)) {
                    eprintln!("xtask bench: updating baseline {f}: {e}");
                    return ExitCode::from(2);
                }
                println!("xtask bench: baseline {f} updated");
            }
            return ExitCode::SUCCESS;
        }

        let mut failures = 0usize;
        for f in FILES {
            match gate_file(&root.join(f), &out_dir.join(f)) {
                Ok(n) => println!("xtask bench: {f}: {n} row(s) within {:.0}% of baseline", THRESHOLD * 100.0),
                Err(msgs) => {
                    for m in &msgs {
                        eprintln!("xtask bench: {f}: {m}");
                    }
                    failures += msgs.len();
                }
            }
        }
        match shape_check(&out_dir.join("BENCH_ra.json")) {
            Ok(()) => println!(
                "xtask bench: shape OK — flush_all notify cost Θ(P), targeted/rflush flat"
            ),
            Err(m) => {
                eprintln!("xtask bench: BENCH_ra.json: {m}");
                failures += 1;
            }
        }
        match shape_check_agg(&out_dir.join("BENCH_agg.json")) {
            Ok(()) => println!(
                "xtask bench: agg shape OK — bytes/packet >= 8x direct, notify shape preserved"
            ),
            Err(m) => {
                eprintln!("xtask bench: BENCH_agg.json: {m}");
                failures += 1;
            }
        }
        if failures > 0 {
            eprintln!("xtask bench: {failures} failure(s)");
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        }
    }

    /// A row's identity and its gated numbers.
    struct Row {
        key: String,
        gate: BTreeMap<String, f64>,
        info: BTreeMap<String, f64>,
    }

    fn gate_file(baseline: &Path, candidate: &Path) -> Result<usize, Vec<String>> {
        let base = load_rows(baseline).map_err(|e| vec![e])?;
        let cand = load_rows(candidate).map_err(|e| vec![e])?;
        let by_key: BTreeMap<&str, &Row> = base.iter().map(|r| (r.key.as_str(), r)).collect();
        let mut errs = Vec::new();
        for row in &cand {
            let Some(b) = by_key.get(row.key.as_str()) else {
                errs.push(format!(
                    "row {} missing from baseline (run `cargo xtask bench --update-baseline`)",
                    row.key
                ));
                continue;
            };
            if b.gate.keys().ne(row.gate.keys()) {
                errs.push(format!("row {}: gate field set differs from baseline", row.key));
                continue;
            }
            for (k, &new) in &row.gate {
                let old = b.gate[k];
                if new > old * (1.0 + THRESHOLD) + f64::EPSILON {
                    errs.push(format!(
                        "row {}: {k} regressed {old} -> {new} (+{:.1}%, limit {:.0}%)",
                        row.key,
                        (new / old.max(f64::MIN_POSITIVE) - 1.0) * 100.0,
                        THRESHOLD * 100.0
                    ));
                } else if old > 0.0 && new < old * (1.0 - THRESHOLD) {
                    println!(
                        "xtask bench: note: row {}: {k} improved {old} -> {new}; \
                         consider `cargo xtask bench --update-baseline`",
                        row.key
                    );
                }
            }
        }
        if errs.is_empty() { Ok(cand.len()) } else { Err(errs) }
    }

    /// Independent re-check of the tentpole claim from the emitted JSON:
    /// per-notify flush charges under `flush_all` grow ~linearly in P
    /// while the targeted modes stay flat (sublinear in P).
    fn shape_check(candidate: &Path) -> Result<(), String> {
        let rows = load_rows(candidate)?;
        let fpn = |p: usize, mode: &str| -> Option<f64> {
            rows.iter()
                .find(|r| r.key == format!("ra/p{p}/caf-mpi/{mode}"))
                .and_then(|r| r.info.get("flushes_per_notify").copied())
        };
        let mut ps: Vec<usize> = rows
            .iter()
            .filter_map(|r| {
                let mut it = r.key.split('/');
                let (b, p) = (it.next()?, it.next()?);
                (b == "ra" && r.key.contains("caf-mpi"))
                    .then(|| p.trim_start_matches('p').parse().ok())
                    .flatten()
            })
            .collect();
        ps.sort_unstable();
        ps.dedup();
        let (&pmin, &pmax) = (ps.first().ok_or("no caf-mpi rows")?, ps.last().unwrap());
        let all_min = fpn(pmin, "all").ok_or("missing all@pmin row")?;
        let all_max = fpn(pmax, "all").ok_or("missing all@pmax row")?;
        if all_max / all_min.max(f64::EPSILON) < 0.5 * pmax as f64 / pmin as f64 {
            return Err(format!(
                "flush_all per-notify cost not Θ(P): {all_min} @P={pmin} -> {all_max} @P={pmax}"
            ));
        }
        for mode in ["targeted", "rflush"] {
            let t_min = fpn(pmin, mode).ok_or("missing targeted row")?;
            let t_max = fpn(pmax, mode).ok_or("missing targeted row")?;
            if t_max > 2.0 * t_min.max(1.0) {
                return Err(format!(
                    "{mode} per-notify cost grew with P: {t_min} @P={pmin} -> {t_max} @P={pmax}"
                ));
            }
        }
        Ok(())
    }

    /// Independent re-check of the aggregation acceptance claims from the
    /// emitted BENCH_agg.json: coalescing lifts payload bytes per wire
    /// packet by at least 8x over the direct small-put path on both
    /// substrates; the per-notify flush shape (Θ(P) under `all`, flat
    /// under the targeted modes) survives aggregation; and — when the
    /// sweep reaches P >= 32 (full run, not `--smoke`) — routed
    /// aggregation beats the per-update direct path on modeled RA
    /// throughput.
    fn shape_check_agg(candidate: &Path) -> Result<(), String> {
        let rows = load_rows(candidate)?;
        for sub in ["caf-mpi", "caf-gasnet"] {
            let bpp = |mode: &str| -> Option<f64> {
                rows.iter()
                    .find(|r| r.key == format!("agg-bpp/p2/{sub}/{mode}"))
                    .and_then(|r| r.gate.get("bytes_per_packet").copied())
            };
            let direct = bpp("direct").ok_or_else(|| format!("missing agg-bpp direct ({sub})"))?;
            let agg = bpp("agg").ok_or_else(|| format!("missing agg-bpp agg ({sub})"))?;
            if agg < 8.0 * direct {
                return Err(format!(
                    "{sub}: aggregated bytes/packet {agg} < 8x direct {direct}"
                ));
            }
        }
        let ra_ps: Vec<usize> = {
            let mut v: Vec<usize> = rows
                .iter()
                .filter_map(|r| {
                    let mut it = r.key.split('/');
                    (it.next()? == "agg-ra")
                        .then(|| it.next()?.trim_start_matches('p').parse().ok())
                        .flatten()
                })
                .collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        let &ra_pmax = ra_ps.last().ok_or("no agg-ra rows")?;
        if ra_pmax >= 32 {
            let gups = |mode: &str| -> Option<f64> {
                rows.iter()
                    .find(|r| r.key == format!("agg-ra/p{ra_pmax}/caf-mpi/{mode}"))
                    .and_then(|r| r.info.get("proxy_gups").copied())
            };
            let direct = gups("direct").ok_or("missing agg-ra direct row")?;
            let routed = gups("agg-routed").ok_or("missing agg-ra agg-routed row")?;
            if routed <= direct {
                return Err(format!(
                    "routed aggregation not faster at P={ra_pmax}: {routed} vs direct {direct} proxy GUPS"
                ));
            }
        }
        let fpn = |p: usize, mode: &str| -> Option<f64> {
            rows.iter()
                .find(|r| r.key == format!("agg-notify/p{p}/caf-mpi/{mode}"))
                .and_then(|r| r.info.get("flushes_per_notify").copied())
        };
        let mut ps: Vec<usize> = rows
            .iter()
            .filter_map(|r| {
                let mut it = r.key.split('/');
                (it.next()? == "agg-notify")
                    .then(|| it.next()?.trim_start_matches('p').parse().ok())
                    .flatten()
            })
            .collect();
        ps.sort_unstable();
        ps.dedup();
        let (&pmin, &pmax) = (ps.first().ok_or("no agg-notify rows")?, ps.last().unwrap());
        let all_min = fpn(pmin, "all").ok_or("missing agg-notify all@pmin")?;
        let all_max = fpn(pmax, "all").ok_or("missing agg-notify all@pmax")?;
        if all_max / all_min.max(f64::EPSILON) < 0.5 * pmax as f64 / pmin as f64 {
            return Err(format!(
                "flush_all per-notify cost not Θ(P) under aggregation: {all_min} @P={pmin} -> {all_max} @P={pmax}"
            ));
        }
        for mode in ["targeted", "rflush"] {
            let t_min = fpn(pmin, mode).ok_or("missing agg-notify targeted row")?;
            let t_max = fpn(pmax, mode).ok_or("missing agg-notify targeted row")?;
            if t_max > 2.0 * t_min.max(1.0) {
                return Err(format!(
                    "{mode} per-notify cost grew with P under aggregation: {t_min} @P={pmin} -> {t_max} @P={pmax}"
                ));
            }
        }
        Ok(())
    }

    fn load_rows(path: &Path) -> Result<Vec<Row>, String> {
        let text = fs::read_to_string(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        let v = json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        let obj = v.as_object().ok_or("top level is not an object")?;
        match obj.get("schema").and_then(json::Value::as_str) {
            Some("caf-bench-v1") => {}
            other => return Err(format!("unknown schema {other:?} (want caf-bench-v1)")),
        }
        let rows = obj
            .get("rows")
            .and_then(json::Value::as_array)
            .ok_or("missing rows array")?;
        rows.iter()
            .map(|r| {
                let r = r.as_object().ok_or("row is not an object")?;
                let s = |k: &str| -> Result<&str, String> {
                    r.get(k)
                        .and_then(json::Value::as_str)
                        .ok_or_else(|| format!("row missing string field {k}"))
                };
                let key = format!(
                    "{}/p{}/{}/{}",
                    s("bench")?,
                    r.get("p").and_then(json::Value::as_f64).ok_or("row missing p")?,
                    s("substrate")?,
                    s("flush")?
                );
                let numbers = |k: &str| -> Result<BTreeMap<String, f64>, String> {
                    r.get(k)
                        .and_then(json::Value::as_object)
                        .ok_or_else(|| format!("row {key} missing {k} object"))?
                        .iter()
                        .map(|(name, val)| {
                            val.as_f64()
                                .map(|f| (name.clone(), f))
                                .ok_or_else(|| format!("row {key}: {k}.{name} not a number"))
                        })
                        .collect()
                };
                Ok(Row { gate: numbers("gate")?, info: numbers("info")?, key })
            })
            .collect()
    }

    /// Minimal recursive-descent JSON reader (std-only; enough for the
    /// bench schema: objects, arrays, strings, numbers, booleans, null).
    pub mod json {
        use std::collections::BTreeMap;

        #[derive(Debug, Clone, PartialEq)]
        pub enum Value {
            Null,
            Bool(bool),
            Num(f64),
            Str(String),
            Arr(Vec<Value>),
            Obj(BTreeMap<String, Value>),
        }

        impl Value {
            pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
                match self {
                    Value::Obj(m) => Some(m),
                    _ => None,
                }
            }
            pub fn as_array(&self) -> Option<&[Value]> {
                match self {
                    Value::Arr(v) => Some(v),
                    _ => None,
                }
            }
            pub fn as_str(&self) -> Option<&str> {
                match self {
                    Value::Str(s) => Some(s),
                    _ => None,
                }
            }
            pub fn as_f64(&self) -> Option<f64> {
                match self {
                    Value::Num(n) => Some(*n),
                    _ => None,
                }
            }
        }

        pub fn parse(text: &str) -> Result<Value, String> {
            let bytes = text.as_bytes();
            let mut pos = 0usize;
            let v = value(bytes, &mut pos)?;
            skip_ws(bytes, &mut pos);
            if pos != bytes.len() {
                return Err(format!("trailing garbage at byte {pos}"));
            }
            Ok(v)
        }

        fn skip_ws(b: &[u8], pos: &mut usize) {
            while *pos < b.len() && b[*pos].is_ascii_whitespace() {
                *pos += 1;
            }
        }

        fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
            skip_ws(b, pos);
            if b.get(*pos) == Some(&c) {
                *pos += 1;
                Ok(())
            } else {
                Err(format!("expected `{}` at byte {pos}", c as char))
            }
        }

        fn value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b'{') => {
                    *pos += 1;
                    let mut m = BTreeMap::new();
                    skip_ws(b, pos);
                    if b.get(*pos) == Some(&b'}') {
                        *pos += 1;
                        return Ok(Value::Obj(m));
                    }
                    loop {
                        skip_ws(b, pos);
                        let k = match string(b, pos)? {
                            Value::Str(s) => s,
                            _ => unreachable!(),
                        };
                        expect(b, pos, b':')?;
                        m.insert(k, value(b, pos)?);
                        skip_ws(b, pos);
                        match b.get(*pos) {
                            Some(b',') => *pos += 1,
                            Some(b'}') => {
                                *pos += 1;
                                return Ok(Value::Obj(m));
                            }
                            _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
                        }
                    }
                }
                Some(b'[') => {
                    *pos += 1;
                    let mut v = Vec::new();
                    skip_ws(b, pos);
                    if b.get(*pos) == Some(&b']') {
                        *pos += 1;
                        return Ok(Value::Arr(v));
                    }
                    loop {
                        v.push(value(b, pos)?);
                        skip_ws(b, pos);
                        match b.get(*pos) {
                            Some(b',') => *pos += 1,
                            Some(b']') => {
                                *pos += 1;
                                return Ok(Value::Arr(v));
                            }
                            _ => return Err(format!("expected `,` or `]` at byte {pos}")),
                        }
                    }
                }
                Some(b'"') => string(b, pos),
                Some(b't') if b[*pos..].starts_with(b"true") => {
                    *pos += 4;
                    Ok(Value::Bool(true))
                }
                Some(b'f') if b[*pos..].starts_with(b"false") => {
                    *pos += 5;
                    Ok(Value::Bool(false))
                }
                Some(b'n') if b[*pos..].starts_with(b"null") => {
                    *pos += 4;
                    Ok(Value::Null)
                }
                Some(_) => number(b, pos),
                None => Err("unexpected end of input".into()),
            }
        }

        fn string(b: &[u8], pos: &mut usize) -> Result<Value, String> {
            if b.get(*pos) != Some(&b'"') {
                return Err(format!("expected string at byte {pos}"));
            }
            *pos += 1;
            let start = *pos;
            while *pos < b.len() {
                match b[*pos] {
                    b'"' => {
                        let s = std::str::from_utf8(&b[start..*pos])
                            .map_err(|e| e.to_string())?
                            .to_string();
                        *pos += 1;
                        return Ok(Value::Str(s));
                    }
                    // The bench schema never emits escapes; reject rather
                    // than silently mis-decode.
                    b'\\' => return Err(format!("escape sequences unsupported (byte {pos})")),
                    _ => *pos += 1,
                }
            }
            Err("unterminated string".into())
        }

        fn number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            std::str::from_utf8(&b[start..*pos])
                .ok()
                .and_then(|s| s.parse().ok())
                .map(Value::Num)
                .ok_or_else(|| format!("bad number at byte {start}"))
        }
    }
}

fn lint() -> ExitCode {
    let root = workspace_root();
    let mut files = Vec::new();
    for dir in ["crates", "tests", "examples"] {
        collect_rs_files(&root.join(dir), &mut files);
    }
    files.sort();

    let mut findings = 0usize;
    for path in &files {
        if is_exempt(&root, path) {
            continue;
        }
        let src = match fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("xtask lint: reading {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let mut nd = is_nd_target(&root, path);
        for (idx, line) in src.lines().enumerate() {
            if nd && line.trim_start().starts_with("#[cfg(test)]") {
                // Tests may sleep and time freely; everything below the
                // first test attribute in the modeled crates is theirs.
                nd = false;
            }
            if let Some(pat) = flagged_pattern(line) {
                findings += 1;
                eprintln!(
                    "{}:{}: direct segment access `{pat}` outside the instrumented \
                     substrate entry points (route through the mpisim/gasnetsim API, \
                     or mark `// {ALLOW_MARKER}`)",
                    path.strip_prefix(&root).unwrap_or(path).display(),
                    idx + 1,
                );
            }
            if nd {
                if let Some(pat) = nd_flagged_pattern(line) {
                    findings += 1;
                    eprintln!(
                        "{}:{}: nondeterministic `{pat}` in a modeled crate (use the \
                         gated primitives in fabric/src/delay.rs, or mark \
                         `// {ND_ALLOW_MARKER}`)",
                        path.strip_prefix(&root).unwrap_or(path).display(),
                        idx + 1,
                    );
                }
            }
        }
    }

    if findings > 0 {
        eprintln!("xtask lint: {findings} finding(s)");
        ExitCode::FAILURE
    } else {
        println!(
            "xtask lint: {} file(s) scanned, no segment-direct access outside \
             mpisim/gasnetsim/fabric, no raw timing in the modeled crates",
            files.len()
        );
        ExitCode::SUCCESS
    }
}

/// The pattern a line trips on, if any. Comment lines and lines carrying
/// the allow marker are skipped.
fn flagged_pattern(line: &str) -> Option<&'static str> {
    let trimmed = line.trim_start();
    if trimmed.starts_with("//") || line.contains(ALLOW_MARKER) {
        return None;
    }
    PATTERNS.iter().find(|p| line.contains(*p)).copied()
}

/// The nondeterminism pattern a line trips on, if any. Comment lines,
/// marked lines, and the designated timing modules are exempt.
fn nd_flagged_pattern(line: &str) -> Option<&'static str> {
    let trimmed = line.trim_start();
    if trimmed.starts_with("//") || line.contains(ND_ALLOW_MARKER) {
        return None;
    }
    ND_PATTERNS.iter().find(|p| line.contains(*p)).copied()
}

/// Whether the nondeterminism lint applies to this file: inside one of
/// the modeled crates and not one of the designated timing modules.
fn is_nd_target(root: &Path, path: &Path) -> bool {
    if path
        .file_name()
        .is_some_and(|n| ND_ALLOW_FILES.iter().any(|f| n == *f))
    {
        return false;
    }
    let rel = path.strip_prefix(root).unwrap_or(path);
    let mut comps = rel.components();
    match (comps.next(), comps.next()) {
        (Some(first), Some(second)) => {
            first.as_os_str() == "crates"
                && ND_CRATES.iter().any(|c| second.as_os_str() == *c)
        }
        _ => false,
    }
}

fn is_exempt(root: &Path, path: &Path) -> bool {
    let rel = path.strip_prefix(root).unwrap_or(path);
    let mut comps = rel.components();
    match (comps.next(), comps.next()) {
        (Some(first), Some(second)) => {
            first.as_os_str() == "crates"
                && EXEMPT.iter().any(|c| second.as_os_str() == *c)
        }
        _ => false,
    }
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            // `target/` never nests under crates/*/src, but be safe.
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// `cargo xtask` runs with the workspace root as cwd (via the alias);
/// fall back to CARGO_MANIFEST_DIR/../.. when invoked directly.
fn workspace_root() -> PathBuf {
    let cwd = std::env::current_dir().expect("cwd");
    if cwd.join("Cargo.toml").is_file() && cwd.join("crates").is_dir() {
        return cwd;
    }
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("xtask lives at <root>/crates/xtask")
        .to_path_buf()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_raw_segment_calls_but_not_comments_or_allows() {
        assert_eq!(
            flagged_pattern("let seg = mpi.win_segment(&win, 0)?;"),
            Some("win_segment(")
        );
        assert_eq!(
            flagged_pattern("let s = self.ep.segment(id)?;"),
            Some(".segment(")
        );
        assert_eq!(flagged_pattern("// mentions win_segment( in prose"), None);
        assert_eq!(
            flagged_pattern("let seg = mpi.win_segment(&w, 0)?; // lint:allow(segment-direct)"),
            None
        );
        assert_eq!(flagged_pattern("let x = segment_count;"), None);
    }

    #[test]
    fn flags_raw_timing_but_not_comments_or_allows() {
        assert_eq!(
            nd_flagged_pattern("std::thread::sleep(Duration::from_millis(5));"),
            Some("thread::sleep")
        );
        assert_eq!(nd_flagged_pattern("let t = Instant::now();"), Some("Instant::now"));
        assert_eq!(nd_flagged_pattern("std::hint::spin_loop();"), Some("spin_loop("));
        assert_eq!(nd_flagged_pattern("// no raw Instant::now here"), None);
        assert_eq!(
            nd_flagged_pattern("let t = Instant::now(); // lint:allow(nondeterminism)"),
            None
        );
        assert_eq!(nd_flagged_pattern("let d = spin_budget;"), None);
    }

    #[test]
    fn nondeterminism_lint_targets_modeled_crates_minus_timing_modules() {
        let root = Path::new("/repo");
        for yes in [
            "crates/fabric/src/fabric_impl.rs",
            "crates/mpisim/src/p2p.rs",
            "crates/gasnetsim/src/rma.rs",
            "crates/core/src/image.rs",
            "crates/agg/src/lib.rs",
        ] {
            assert!(is_nd_target(root, &root.join(yes)), "{yes}");
        }
        for no in [
            "crates/fabric/src/delay.rs",
            "crates/trace/src/stall.rs",
            "crates/hpcc/src/ra.rs",
            "crates/bench/benches/micro_ops.rs",
            "tests/model_explore.rs",
        ] {
            assert!(!is_nd_target(root, &root.join(no)), "{no}");
        }
    }

    #[test]
    fn exemptions_cover_exactly_the_substrate_crates_and_xtask() {
        let root = Path::new("/repo");
        for ok in ["crates/mpisim/src/rma.rs", "crates/xtask/src/main.rs"] {
            assert!(is_exempt(root, &root.join(ok)), "{ok}");
        }
        for bad in ["crates/core/src/coarray.rs", "tests/check_clean.rs"] {
            assert!(!is_exempt(root, &root.join(bad)), "{bad}");
        }
    }
}
