//! Repository automation (`cargo xtask <command>`, std-only).
//!
//! ## `cargo xtask lint`
//!
//! The *segment-direct* lint. Every byte that moves through a window or
//! GASNet segment must pass through the instrumented substrate entry
//! points (`crates/mpisim`, `crates/gasnetsim`, `crates/fabric`): those
//! are where the `caf-trace` events and `caf-check` sanitizer hooks
//! live. Code elsewhere that resolves a raw `Segment` handle —
//! `win_segment(...)`, `local_segment(...)`, `win_shared_query(...)`,
//! `.segment(...)` — bypasses both, so the tracer under-reports and the
//! checker goes blind to those accesses. This lint greps the workspace
//! sources and fails if any such call site exists outside the substrate
//! crates.
//!
//! A deliberate exception (there should be almost none) is marked on
//! the same line:
//!
//! ```text
//! let seg = mpi.win_segment(&win, rank)?; // lint:allow(segment-direct)
//! ```
//!
//! The same command also runs the *nondeterminism* lint. The model
//! checker (`caf-model`) replays whole jobs under the scheduler gate,
//! which only works if the runtime crates take no schedule-relevant
//! decisions from wall-clock time or raw spinning: every blocking wait
//! must go through the gated primitives. Inside the modeled crates
//! (`fabric`, `mpisim`, `gasnetsim`, `core`), non-test code must not
//! call `thread::sleep`, `Instant::now`, or `spin_loop` directly —
//! timing is centralized in `fabric/src/delay.rs` (virtual clock +
//! gated spins) and `trace/src/stall.rs` (the watchdog, inhibited under
//! model control). Scanning stops at the first `#[cfg(test)]` line of a
//! file, and a deliberate exception is marked with
//! `// lint:allow(nondeterminism)` on the same line.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Raw-segment call sites the instrumented entry points wrap. Kept as
/// suffix patterns so formatting (`foo.win_segment(`, `self.ep.segment(`)
/// doesn't matter.
const PATTERNS: &[&str] = &[
    "win_segment(",
    "local_segment(",
    "win_shared_query(",
    ".segment(",
];

/// Crates allowed to touch segments directly: the substrates themselves
/// (where the hooks live) and this tool (which spells the patterns out).
const EXEMPT: &[&str] = &["mpisim", "gasnetsim", "fabric", "xtask"];

const ALLOW_MARKER: &str = "lint:allow(segment-direct)";

/// Wall-clock and raw-spin primitives forbidden in the modeled crates:
/// each one lets a schedule depend on real time, which breaks replay
/// under the `caf-model` scheduler gate.
const ND_PATTERNS: &[&str] = &["thread::sleep", "Instant::now", "spin_loop("];

/// Crates the scheduler gate models; only these are held to the
/// nondeterminism rule (benches and the hpcc kernels time themselves on
/// purpose).
const ND_CRATES: &[&str] = &["fabric", "mpisim", "gasnetsim", "core"];

/// Files where timing is *supposed* to live: the virtual clock / gated
/// spin module and the stall watchdog.
const ND_ALLOW_FILES: &[&str] = &["delay.rs", "stall.rs"];

const ND_ALLOW_MARKER: &str = "lint:allow(nondeterminism)";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(),
        Some(other) => {
            eprintln!("unknown xtask command `{other}`; available: lint");
            ExitCode::from(2)
        }
        None => {
            eprintln!("usage: cargo xtask lint");
            ExitCode::from(2)
        }
    }
}

fn lint() -> ExitCode {
    let root = workspace_root();
    let mut files = Vec::new();
    for dir in ["crates", "tests", "examples"] {
        collect_rs_files(&root.join(dir), &mut files);
    }
    files.sort();

    let mut findings = 0usize;
    for path in &files {
        if is_exempt(&root, path) {
            continue;
        }
        let src = match fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("xtask lint: reading {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let mut nd = is_nd_target(&root, path);
        for (idx, line) in src.lines().enumerate() {
            if nd && line.trim_start().starts_with("#[cfg(test)]") {
                // Tests may sleep and time freely; everything below the
                // first test attribute in the modeled crates is theirs.
                nd = false;
            }
            if let Some(pat) = flagged_pattern(line) {
                findings += 1;
                eprintln!(
                    "{}:{}: direct segment access `{pat}` outside the instrumented \
                     substrate entry points (route through the mpisim/gasnetsim API, \
                     or mark `// {ALLOW_MARKER}`)",
                    path.strip_prefix(&root).unwrap_or(path).display(),
                    idx + 1,
                );
            }
            if nd {
                if let Some(pat) = nd_flagged_pattern(line) {
                    findings += 1;
                    eprintln!(
                        "{}:{}: nondeterministic `{pat}` in a modeled crate (use the \
                         gated primitives in fabric/src/delay.rs, or mark \
                         `// {ND_ALLOW_MARKER}`)",
                        path.strip_prefix(&root).unwrap_or(path).display(),
                        idx + 1,
                    );
                }
            }
        }
    }

    if findings > 0 {
        eprintln!("xtask lint: {findings} finding(s)");
        ExitCode::FAILURE
    } else {
        println!(
            "xtask lint: {} file(s) scanned, no segment-direct access outside \
             mpisim/gasnetsim/fabric, no raw timing in the modeled crates",
            files.len()
        );
        ExitCode::SUCCESS
    }
}

/// The pattern a line trips on, if any. Comment lines and lines carrying
/// the allow marker are skipped.
fn flagged_pattern(line: &str) -> Option<&'static str> {
    let trimmed = line.trim_start();
    if trimmed.starts_with("//") || line.contains(ALLOW_MARKER) {
        return None;
    }
    PATTERNS.iter().find(|p| line.contains(*p)).copied()
}

/// The nondeterminism pattern a line trips on, if any. Comment lines,
/// marked lines, and the designated timing modules are exempt.
fn nd_flagged_pattern(line: &str) -> Option<&'static str> {
    let trimmed = line.trim_start();
    if trimmed.starts_with("//") || line.contains(ND_ALLOW_MARKER) {
        return None;
    }
    ND_PATTERNS.iter().find(|p| line.contains(*p)).copied()
}

/// Whether the nondeterminism lint applies to this file: inside one of
/// the modeled crates and not one of the designated timing modules.
fn is_nd_target(root: &Path, path: &Path) -> bool {
    if path
        .file_name()
        .is_some_and(|n| ND_ALLOW_FILES.iter().any(|f| n == *f))
    {
        return false;
    }
    let rel = path.strip_prefix(root).unwrap_or(path);
    let mut comps = rel.components();
    match (comps.next(), comps.next()) {
        (Some(first), Some(second)) => {
            first.as_os_str() == "crates"
                && ND_CRATES.iter().any(|c| second.as_os_str() == *c)
        }
        _ => false,
    }
}

fn is_exempt(root: &Path, path: &Path) -> bool {
    let rel = path.strip_prefix(root).unwrap_or(path);
    let mut comps = rel.components();
    match (comps.next(), comps.next()) {
        (Some(first), Some(second)) => {
            first.as_os_str() == "crates"
                && EXEMPT.iter().any(|c| second.as_os_str() == *c)
        }
        _ => false,
    }
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            // `target/` never nests under crates/*/src, but be safe.
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// `cargo xtask` runs with the workspace root as cwd (via the alias);
/// fall back to CARGO_MANIFEST_DIR/../.. when invoked directly.
fn workspace_root() -> PathBuf {
    let cwd = std::env::current_dir().expect("cwd");
    if cwd.join("Cargo.toml").is_file() && cwd.join("crates").is_dir() {
        return cwd;
    }
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("xtask lives at <root>/crates/xtask")
        .to_path_buf()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_raw_segment_calls_but_not_comments_or_allows() {
        assert_eq!(
            flagged_pattern("let seg = mpi.win_segment(&win, 0)?;"),
            Some("win_segment(")
        );
        assert_eq!(
            flagged_pattern("let s = self.ep.segment(id)?;"),
            Some(".segment(")
        );
        assert_eq!(flagged_pattern("// mentions win_segment( in prose"), None);
        assert_eq!(
            flagged_pattern("let seg = mpi.win_segment(&w, 0)?; // lint:allow(segment-direct)"),
            None
        );
        assert_eq!(flagged_pattern("let x = segment_count;"), None);
    }

    #[test]
    fn flags_raw_timing_but_not_comments_or_allows() {
        assert_eq!(
            nd_flagged_pattern("std::thread::sleep(Duration::from_millis(5));"),
            Some("thread::sleep")
        );
        assert_eq!(nd_flagged_pattern("let t = Instant::now();"), Some("Instant::now"));
        assert_eq!(nd_flagged_pattern("std::hint::spin_loop();"), Some("spin_loop("));
        assert_eq!(nd_flagged_pattern("// no raw Instant::now here"), None);
        assert_eq!(
            nd_flagged_pattern("let t = Instant::now(); // lint:allow(nondeterminism)"),
            None
        );
        assert_eq!(nd_flagged_pattern("let d = spin_budget;"), None);
    }

    #[test]
    fn nondeterminism_lint_targets_modeled_crates_minus_timing_modules() {
        let root = Path::new("/repo");
        for yes in [
            "crates/fabric/src/fabric_impl.rs",
            "crates/mpisim/src/p2p.rs",
            "crates/gasnetsim/src/rma.rs",
            "crates/core/src/image.rs",
        ] {
            assert!(is_nd_target(root, &root.join(yes)), "{yes}");
        }
        for no in [
            "crates/fabric/src/delay.rs",
            "crates/trace/src/stall.rs",
            "crates/hpcc/src/ra.rs",
            "crates/bench/benches/micro_ops.rs",
            "tests/model_explore.rs",
        ] {
            assert!(!is_nd_target(root, &root.join(no)), "{no}");
        }
    }

    #[test]
    fn exemptions_cover_exactly_the_substrate_crates_and_xtask() {
        let root = Path::new("/repo");
        for ok in ["crates/mpisim/src/rma.rs", "crates/xtask/src/main.rs"] {
            assert!(is_exempt(root, &root.join(ok)), "{ok}");
        }
        for bad in ["crates/core/src/coarray.rs", "tests/check_clean.rs"] {
            assert!(!is_exempt(root, &root.join(bad)), "{bad}");
        }
    }
}
