//! Repository automation (`cargo xtask <command>`).
//!
//! ## `cargo xtask lint [--format text|json|github] [--changed] [--update-inventory] [--update-orderings]`
//!
//! Runs the `caf-lint` static analysis engine over the workspace: the
//! token-aware per-file passes (blocking-point discipline with the
//! `LINT_BLOCKING.json` inventory, lock-across-park, the atomic-ordering
//! justification table, the unsafe/`SAFETY:` audit, layering, and the
//! migrated segment-direct / nondeterminism lints) plus the CFG +
//! call-graph dataflow passes: CAFL008 `sync-protocol` (abstract-state
//! walk of the CAF API over every kernel/example/test body), CAFL009
//! `wait-graph` (interprocedural lock/park order graph, committed as
//! `LINT_WAITGRAPH.json`), and the CAFL000 stale-`lint:allow` audit.
//! See `crates/lint` and DESIGN.md §14/§16 for the classes, diagnostic
//! codes (CAFL000..CAFL009), and the `// lint:allow(<class>)`
//! escape-hatch policy.
//!
//! The run fails on any finding, and also when the regenerated
//! blocking-point inventory or wait graph differs from the committed
//! `LINT_BLOCKING.json` / `LINT_WAITGRAPH.json` (refresh both with
//! `--update-inventory`). `--changed` keeps the full workspace analysis
//! (the interprocedural passes need every file) but reports only
//! findings in files that differ from the git merge-base and skips the
//! committed-artifact byte-compares — the fast pre-push loop; CI always
//! runs the full mode. `--update-orderings` appends TODO-stubbed rows
//! to `crates/lint/orderings.tsv` for any unjustified `Ordering::`
//! site; the lint keeps failing until the TODOs become real
//! justifications.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some("bench") => bench::run(&args[1..]),
        Some(other) => {
            eprintln!("unknown xtask command `{other}`; available: lint, bench");
            ExitCode::from(2)
        }
        None => {
            eprintln!("usage: cargo xtask <lint|bench>");
            ExitCode::from(2)
        }
    }
}

/// ## `cargo xtask bench [--smoke] [--update-baseline]`
///
/// Runs the deterministic perf harness (`caf-bench`'s `bench` binary) and
/// gates its output against the committed `BENCH_ra.json` /
/// `BENCH_micro.json` / `BENCH_agg.json` baselines at the repository root.
///
/// Every gated number is a modeled count or nanosecond total from the
/// substrate delay meter — a pure function of the communication schedule,
/// identical across machines — so the gate can be tight: any gated field
/// more than [`bench::THRESHOLD`] above its baseline fails. Wall-clock
/// values live under each row's `info` object and are never compared.
/// `--smoke` runs a reduced job-size sweep whose rows are a strict subset
/// of the full baseline (same per-row workloads); `--update-baseline`
/// reseeds the committed files instead of comparing.
mod bench {
    use super::*;
    use std::collections::BTreeMap;
    use std::process::Command;

    /// Allowed relative increase of a gated field over its baseline.
    pub const THRESHOLD: f64 = 0.15;

    const FILES: [&str; 3] = ["BENCH_ra.json", "BENCH_micro.json", "BENCH_agg.json"];

    pub fn run(args: &[String]) -> ExitCode {
        let smoke = args.iter().any(|a| a == "--smoke");
        let update = args.iter().any(|a| a == "--update-baseline");
        let root = workspace_root();
        let out_dir = root.join("target").join("bench-out");
        if let Err(e) = fs::create_dir_all(&out_dir) {
            eprintln!("xtask bench: creating {}: {e}", out_dir.display());
            return ExitCode::from(2);
        }

        let mut cmd = Command::new(env!("CARGO"));
        cmd.current_dir(&root)
            .args(["run", "--release", "-q", "-p", "caf-bench", "--bin", "bench", "--"])
            .arg("--out-dir")
            .arg(&out_dir);
        if smoke && !update {
            cmd.arg("--smoke");
        }
        match cmd.status() {
            Ok(st) if st.success() => {}
            Ok(st) => {
                eprintln!("xtask bench: harness failed with {st}");
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("xtask bench: spawning cargo: {e}");
                return ExitCode::from(2);
            }
        }

        if update {
            for f in FILES {
                if let Err(e) = fs::copy(out_dir.join(f), root.join(f)) {
                    eprintln!("xtask bench: updating baseline {f}: {e}");
                    return ExitCode::from(2);
                }
                println!("xtask bench: baseline {f} updated");
            }
            return ExitCode::SUCCESS;
        }

        let mut failures = 0usize;
        for f in FILES {
            match gate_file(&root.join(f), &out_dir.join(f)) {
                Ok(n) => println!("xtask bench: {f}: {n} row(s) within {:.0}% of baseline", THRESHOLD * 100.0),
                Err(msgs) => {
                    for m in &msgs {
                        eprintln!("xtask bench: {f}: {m}");
                    }
                    failures += msgs.len();
                }
            }
        }
        match shape_check(&out_dir.join("BENCH_ra.json")) {
            Ok(()) => println!(
                "xtask bench: shape OK — flush_all notify cost Θ(P), targeted/rflush flat"
            ),
            Err(m) => {
                eprintln!("xtask bench: BENCH_ra.json: {m}");
                failures += 1;
            }
        }
        match shape_check_agg(&out_dir.join("BENCH_agg.json")) {
            Ok(()) => println!(
                "xtask bench: agg shape OK — bytes/packet >= 8x direct, notify shape preserved"
            ),
            Err(m) => {
                eprintln!("xtask bench: BENCH_agg.json: {m}");
                failures += 1;
            }
        }
        if failures > 0 {
            eprintln!("xtask bench: {failures} failure(s)");
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        }
    }

    /// A row's identity and its gated numbers.
    struct Row {
        key: String,
        gate: BTreeMap<String, f64>,
        info: BTreeMap<String, f64>,
    }

    fn gate_file(baseline: &Path, candidate: &Path) -> Result<usize, Vec<String>> {
        let base = load_rows(baseline).map_err(|e| vec![e])?;
        let cand = load_rows(candidate).map_err(|e| vec![e])?;
        let by_key: BTreeMap<&str, &Row> = base.iter().map(|r| (r.key.as_str(), r)).collect();
        let mut errs = Vec::new();
        for row in &cand {
            let Some(b) = by_key.get(row.key.as_str()) else {
                errs.push(format!(
                    "row {} missing from baseline (run `cargo xtask bench --update-baseline`)",
                    row.key
                ));
                continue;
            };
            if b.gate.keys().ne(row.gate.keys()) {
                errs.push(format!("row {}: gate field set differs from baseline", row.key));
                continue;
            }
            for (k, &new) in &row.gate {
                let old = b.gate[k];
                if new > old * (1.0 + THRESHOLD) + f64::EPSILON {
                    errs.push(format!(
                        "row {}: {k} regressed {old} -> {new} (+{:.1}%, limit {:.0}%)",
                        row.key,
                        (new / old.max(f64::MIN_POSITIVE) - 1.0) * 100.0,
                        THRESHOLD * 100.0
                    ));
                } else if old > 0.0 && new < old * (1.0 - THRESHOLD) {
                    println!(
                        "xtask bench: note: row {}: {k} improved {old} -> {new}; \
                         consider `cargo xtask bench --update-baseline`",
                        row.key
                    );
                }
            }
        }
        if errs.is_empty() { Ok(cand.len()) } else { Err(errs) }
    }

    /// Independent re-check of the tentpole claim from the emitted JSON:
    /// per-notify flush charges under `flush_all` grow ~linearly in P
    /// while the targeted modes stay flat (sublinear in P).
    fn shape_check(candidate: &Path) -> Result<(), String> {
        let rows = load_rows(candidate)?;
        let fpn = |p: usize, mode: &str| -> Option<f64> {
            rows.iter()
                .find(|r| r.key == format!("ra/p{p}/caf-mpi/{mode}"))
                .and_then(|r| r.info.get("flushes_per_notify").copied())
        };
        let mut ps: Vec<usize> = rows
            .iter()
            .filter_map(|r| {
                let mut it = r.key.split('/');
                let (b, p) = (it.next()?, it.next()?);
                (b == "ra" && r.key.contains("caf-mpi"))
                    .then(|| p.trim_start_matches('p').parse().ok())
                    .flatten()
            })
            .collect();
        ps.sort_unstable();
        ps.dedup();
        let (&pmin, &pmax) = (ps.first().ok_or("no caf-mpi rows")?, ps.last().unwrap());
        let all_min = fpn(pmin, "all").ok_or("missing all@pmin row")?;
        let all_max = fpn(pmax, "all").ok_or("missing all@pmax row")?;
        if all_max / all_min.max(f64::EPSILON) < 0.5 * pmax as f64 / pmin as f64 {
            return Err(format!(
                "flush_all per-notify cost not Θ(P): {all_min} @P={pmin} -> {all_max} @P={pmax}"
            ));
        }
        for mode in ["targeted", "rflush"] {
            let t_min = fpn(pmin, mode).ok_or("missing targeted row")?;
            let t_max = fpn(pmax, mode).ok_or("missing targeted row")?;
            if t_max > 2.0 * t_min.max(1.0) {
                return Err(format!(
                    "{mode} per-notify cost grew with P: {t_min} @P={pmin} -> {t_max} @P={pmax}"
                ));
            }
        }
        // Rows executed for real under the task executor carry the
        // analytic per-notify flush prediction; the measured curve must
        // agree with it (same tolerance as the in-process bench check).
        let mut executed = 0usize;
        for r in &rows {
            let Some(&modeled) = r.info.get("modeled_flushes_per_notify") else { continue };
            let &measured = r
                .info
                .get("flushes_per_notify")
                .ok_or_else(|| format!("{}: executed row missing flushes_per_notify", r.key))?;
            if (measured - modeled).abs() > 0.25 * modeled {
                return Err(format!(
                    "{}: executed flushes/notify {measured} disagrees with modeled {modeled}",
                    r.key
                ));
            }
            executed += 1;
        }
        if executed == 0 {
            return Err("no executed task-mode rows in BENCH_ra.json".into());
        }
        Ok(())
    }

    /// Independent re-check of the aggregation acceptance claims from the
    /// emitted BENCH_agg.json: coalescing lifts payload bytes per wire
    /// packet by at least 8x over the direct small-put path on both
    /// substrates; the per-notify flush shape (Θ(P) under `all`, flat
    /// under the targeted modes) survives aggregation; and — when the
    /// sweep reaches P >= 32 (full run, not `--smoke`) — routed
    /// aggregation beats the per-update direct path on modeled RA
    /// throughput.
    fn shape_check_agg(candidate: &Path) -> Result<(), String> {
        let rows = load_rows(candidate)?;
        for sub in ["caf-mpi", "caf-gasnet"] {
            let bpp = |mode: &str| -> Option<f64> {
                rows.iter()
                    .find(|r| r.key == format!("agg-bpp/p2/{sub}/{mode}"))
                    .and_then(|r| r.gate.get("bytes_per_packet").copied())
            };
            let direct = bpp("direct").ok_or_else(|| format!("missing agg-bpp direct ({sub})"))?;
            let agg = bpp("agg").ok_or_else(|| format!("missing agg-bpp agg ({sub})"))?;
            if agg < 8.0 * direct {
                return Err(format!(
                    "{sub}: aggregated bytes/packet {agg} < 8x direct {direct}"
                ));
            }
        }
        let ra_ps: Vec<usize> = {
            let mut v: Vec<usize> = rows
                .iter()
                .filter_map(|r| {
                    let mut it = r.key.split('/');
                    (it.next()? == "agg-ra")
                        .then(|| it.next()?.trim_start_matches('p').parse().ok())
                        .flatten()
                })
                .collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        let &ra_pmax = ra_ps.last().ok_or("no agg-ra rows")?;
        if ra_pmax >= 32 {
            let gups = |mode: &str| -> Option<f64> {
                rows.iter()
                    .find(|r| r.key == format!("agg-ra/p{ra_pmax}/caf-mpi/{mode}"))
                    .and_then(|r| r.info.get("proxy_gups").copied())
            };
            let direct = gups("direct").ok_or("missing agg-ra direct row")?;
            let routed = gups("agg-routed").ok_or("missing agg-ra agg-routed row")?;
            if routed <= direct {
                return Err(format!(
                    "routed aggregation not faster at P={ra_pmax}: {routed} vs direct {direct} proxy GUPS"
                ));
            }
        }
        let fpn = |p: usize, mode: &str| -> Option<f64> {
            rows.iter()
                .find(|r| r.key == format!("agg-notify/p{p}/caf-mpi/{mode}"))
                .and_then(|r| r.info.get("flushes_per_notify").copied())
        };
        let mut ps: Vec<usize> = rows
            .iter()
            .filter_map(|r| {
                let mut it = r.key.split('/');
                (it.next()? == "agg-notify")
                    .then(|| it.next()?.trim_start_matches('p').parse().ok())
                    .flatten()
            })
            .collect();
        ps.sort_unstable();
        ps.dedup();
        let (&pmin, &pmax) = (ps.first().ok_or("no agg-notify rows")?, ps.last().unwrap());
        let all_min = fpn(pmin, "all").ok_or("missing agg-notify all@pmin")?;
        let all_max = fpn(pmax, "all").ok_or("missing agg-notify all@pmax")?;
        if all_max / all_min.max(f64::EPSILON) < 0.5 * pmax as f64 / pmin as f64 {
            return Err(format!(
                "flush_all per-notify cost not Θ(P) under aggregation: {all_min} @P={pmin} -> {all_max} @P={pmax}"
            ));
        }
        for mode in ["targeted", "rflush"] {
            let t_min = fpn(pmin, mode).ok_or("missing agg-notify targeted row")?;
            let t_max = fpn(pmax, mode).ok_or("missing agg-notify targeted row")?;
            if t_max > 2.0 * t_min.max(1.0) {
                return Err(format!(
                    "{mode} per-notify cost grew with P under aggregation: {t_min} @P={pmin} -> {t_max} @P={pmax}"
                ));
            }
        }
        Ok(())
    }

    fn load_rows(path: &Path) -> Result<Vec<Row>, String> {
        let text = fs::read_to_string(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        let v = json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        let obj = v.as_object().ok_or("top level is not an object")?;
        match obj.get("schema").and_then(json::Value::as_str) {
            Some("caf-bench-v1") => {}
            other => return Err(format!("unknown schema {other:?} (want caf-bench-v1)")),
        }
        let rows = obj
            .get("rows")
            .and_then(json::Value::as_array)
            .ok_or("missing rows array")?;
        rows.iter()
            .map(|r| {
                let r = r.as_object().ok_or("row is not an object")?;
                let s = |k: &str| -> Result<&str, String> {
                    r.get(k)
                        .and_then(json::Value::as_str)
                        .ok_or_else(|| format!("row missing string field {k}"))
                };
                let key = format!(
                    "{}/p{}/{}/{}",
                    s("bench")?,
                    r.get("p").and_then(json::Value::as_f64).ok_or("row missing p")?,
                    s("substrate")?,
                    s("flush")?
                );
                let numbers = |k: &str| -> Result<BTreeMap<String, f64>, String> {
                    r.get(k)
                        .and_then(json::Value::as_object)
                        .ok_or_else(|| format!("row {key} missing {k} object"))?
                        .iter()
                        .map(|(name, val)| {
                            val.as_f64()
                                .map(|f| (name.clone(), f))
                                .ok_or_else(|| format!("row {key}: {k}.{name} not a number"))
                        })
                        .collect()
                };
                Ok(Row { gate: numbers("gate")?, info: numbers("info")?, key })
            })
            .collect()
    }

    /// Minimal recursive-descent JSON reader (std-only; enough for the
    /// bench schema: objects, arrays, strings, numbers, booleans, null).
    pub mod json {
        use std::collections::BTreeMap;

        #[derive(Debug, Clone, PartialEq)]
        pub enum Value {
            Null,
            Bool(bool),
            Num(f64),
            Str(String),
            Arr(Vec<Value>),
            Obj(BTreeMap<String, Value>),
        }

        impl Value {
            pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
                match self {
                    Value::Obj(m) => Some(m),
                    _ => None,
                }
            }
            pub fn as_array(&self) -> Option<&[Value]> {
                match self {
                    Value::Arr(v) => Some(v),
                    _ => None,
                }
            }
            pub fn as_str(&self) -> Option<&str> {
                match self {
                    Value::Str(s) => Some(s),
                    _ => None,
                }
            }
            pub fn as_f64(&self) -> Option<f64> {
                match self {
                    Value::Num(n) => Some(*n),
                    _ => None,
                }
            }
        }

        pub fn parse(text: &str) -> Result<Value, String> {
            let bytes = text.as_bytes();
            let mut pos = 0usize;
            let v = value(bytes, &mut pos)?;
            skip_ws(bytes, &mut pos);
            if pos != bytes.len() {
                return Err(format!("trailing garbage at byte {pos}"));
            }
            Ok(v)
        }

        fn skip_ws(b: &[u8], pos: &mut usize) {
            while *pos < b.len() && b[*pos].is_ascii_whitespace() {
                *pos += 1;
            }
        }

        fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
            skip_ws(b, pos);
            if b.get(*pos) == Some(&c) {
                *pos += 1;
                Ok(())
            } else {
                Err(format!("expected `{}` at byte {pos}", c as char))
            }
        }

        fn value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b'{') => {
                    *pos += 1;
                    let mut m = BTreeMap::new();
                    skip_ws(b, pos);
                    if b.get(*pos) == Some(&b'}') {
                        *pos += 1;
                        return Ok(Value::Obj(m));
                    }
                    loop {
                        skip_ws(b, pos);
                        let k = match string(b, pos)? {
                            Value::Str(s) => s,
                            _ => unreachable!(),
                        };
                        expect(b, pos, b':')?;
                        m.insert(k, value(b, pos)?);
                        skip_ws(b, pos);
                        match b.get(*pos) {
                            Some(b',') => *pos += 1,
                            Some(b'}') => {
                                *pos += 1;
                                return Ok(Value::Obj(m));
                            }
                            _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
                        }
                    }
                }
                Some(b'[') => {
                    *pos += 1;
                    let mut v = Vec::new();
                    skip_ws(b, pos);
                    if b.get(*pos) == Some(&b']') {
                        *pos += 1;
                        return Ok(Value::Arr(v));
                    }
                    loop {
                        v.push(value(b, pos)?);
                        skip_ws(b, pos);
                        match b.get(*pos) {
                            Some(b',') => *pos += 1,
                            Some(b']') => {
                                *pos += 1;
                                return Ok(Value::Arr(v));
                            }
                            _ => return Err(format!("expected `,` or `]` at byte {pos}")),
                        }
                    }
                }
                Some(b'"') => string(b, pos),
                Some(b't') if b[*pos..].starts_with(b"true") => {
                    *pos += 4;
                    Ok(Value::Bool(true))
                }
                Some(b'f') if b[*pos..].starts_with(b"false") => {
                    *pos += 5;
                    Ok(Value::Bool(false))
                }
                Some(b'n') if b[*pos..].starts_with(b"null") => {
                    *pos += 4;
                    Ok(Value::Null)
                }
                Some(_) => number(b, pos),
                None => Err("unexpected end of input".into()),
            }
        }

        fn string(b: &[u8], pos: &mut usize) -> Result<Value, String> {
            if b.get(*pos) != Some(&b'"') {
                return Err(format!("expected string at byte {pos}"));
            }
            *pos += 1;
            let start = *pos;
            while *pos < b.len() {
                match b[*pos] {
                    b'"' => {
                        let s = std::str::from_utf8(&b[start..*pos])
                            .map_err(|e| e.to_string())?
                            .to_string();
                        *pos += 1;
                        return Ok(Value::Str(s));
                    }
                    // The bench schema never emits escapes; reject rather
                    // than silently mis-decode.
                    b'\\' => return Err(format!("escape sequences unsupported (byte {pos})")),
                    _ => *pos += 1,
                }
            }
            Err("unterminated string".into())
        }

        fn number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            std::str::from_utf8(&b[start..*pos])
                .ok()
                .and_then(|s| s.parse().ok())
                .map(Value::Num)
                .ok_or_else(|| format!("bad number at byte {start}"))
        }
    }
}

fn lint(args: &[String]) -> ExitCode {
    let format = args
        .iter()
        .position(|a| a == "--format")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("text");
    let update_inventory = args.iter().any(|a| a == "--update-inventory");
    let update_orderings = args.iter().any(|a| a == "--update-orderings");
    let changed_only = args.iter().any(|a| a == "--changed");
    let root = workspace_root();

    let table = match caf_lint::load_table(&root) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("xtask lint: {e}");
            return ExitCode::from(2);
        }
    };
    let mut report = match caf_lint::run_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xtask lint: {e}");
            return ExitCode::from(2);
        }
    };

    if update_orderings {
        let missing = report.missing_ordering_rows(&table);
        if missing.is_empty() {
            println!("xtask lint: ordering table already covers every site");
        } else {
            let path = root.join(caf_lint::ORDERINGS_TSV);
            let mut text = fs::read_to_string(&path).unwrap_or_default();
            if !text.is_empty() && !text.ends_with('\n') {
                text.push('\n');
            }
            for row in &missing {
                text.push_str(row);
                text.push('\n');
            }
            if let Err(e) = fs::write(&path, text) {
                eprintln!("xtask lint: writing {}: {e}", path.display());
                return ExitCode::from(2);
            }
            println!(
                "xtask lint: stubbed {} ordering row(s) in {} — replace every TODO with a \
                 real justification",
                missing.len(),
                caf_lint::ORDERINGS_TSV
            );
        }
        return ExitCode::SUCCESS;
    }

    // Committed artifacts: regenerate and compare (or refresh). Both
    // the blocking-point inventory and the wait graph are byte-compared
    // on every full run so neither can silently drift from the code.
    let inv_path = root.join(caf_lint::BLOCKING_JSON);
    let generated = report.inventory_json();
    let wg_path = root.join(caf_lint::WAITGRAPH_JSON);
    let wg_generated = report.waitgraph_json();
    if update_inventory {
        if let Err(e) = fs::write(&inv_path, &generated) {
            eprintln!("xtask lint: writing {}: {e}", inv_path.display());
            return ExitCode::from(2);
        }
        if let Err(e) = fs::write(&wg_path, &wg_generated) {
            eprintln!("xtask lint: writing {}: {e}", wg_path.display());
            return ExitCode::from(2);
        }
        let (wn, we) = report
            .waitgraph
            .as_ref()
            .map(|g| (g.nodes.len(), g.edges.len()))
            .unwrap_or((0, 0));
        println!("xtask lint: {} refreshed ({} sites)", caf_lint::BLOCKING_JSON, report.sites.len());
        println!(
            "xtask lint: {} refreshed ({wn} nodes, {we} edges)",
            caf_lint::WAITGRAPH_JSON
        );
    } else if !changed_only {
        let committed = fs::read_to_string(&inv_path).unwrap_or_default();
        if committed != generated {
            report.diags.push(caf_lint::Diag {
                code: "CAFL001",
                class: "blocking",
                file: caf_lint::BLOCKING_JSON.to_string(),
                line: 1,
                msg: "committed blocking-point inventory is out of date with the sources; \
                      run `cargo xtask lint --update-inventory` and commit the result"
                    .to_string(),
            });
        }
        let wg_committed = fs::read_to_string(&wg_path).unwrap_or_default();
        if wg_committed != wg_generated {
            report.diags.push(caf_lint::Diag {
                code: "CAFL009",
                class: "wait-graph",
                file: caf_lint::WAITGRAPH_JSON.to_string(),
                line: 1,
                msg: "committed wait graph is out of date with the sources; run \
                      `cargo xtask lint --update-inventory` and commit the result"
                    .to_string(),
            });
        }
    }

    if changed_only {
        match changed_files(&root) {
            Ok(changed) => {
                let before = report.diags.len();
                report.diags.retain(|d| changed.contains(&d.file));
                let hidden = before - report.diags.len();
                if hidden > 0 {
                    eprintln!(
                        "xtask lint: --changed hid {hidden} finding(s) in unchanged files \
                         (full run is the CI gate)"
                    );
                }
            }
            Err(e) => {
                eprintln!("xtask lint: --changed unavailable ({e}); reporting everything");
            }
        }
    }

    match format {
        "json" => print!("{}", report.diags_json()),
        "github" => {
            for d in &report.diags {
                println!("{}", d.github());
            }
        }
        _ => {
            for d in &report.diags {
                eprintln!("{}", d.text());
            }
        }
    }

    if report.diags.is_empty() {
        if format == "text" {
            let (wn, we) = report
                .waitgraph
                .as_ref()
                .map(|g| (g.nodes.len(), g.edges.len()))
                .unwrap_or((0, 0));
            println!(
                "xtask lint: {} file(s) scanned, 0 findings across CAFL000..CAFL009; \
                 blocking inventory: {} site(s) in sync; wait graph: {wn} node(s), \
                 {we} edge(s) in sync",
                report.files_scanned,
                report.sites.len()
            );
        }
        ExitCode::SUCCESS
    } else {
        eprintln!("xtask lint: {} finding(s)", report.diags.len());
        ExitCode::FAILURE
    }
}

/// Workspace-relative paths that differ from the merge-base with the
/// default branch (falling back to HEAD for a detached/first commit).
fn changed_files(root: &Path) -> Result<std::collections::BTreeSet<String>, String> {
    let base = ["main", "master"]
        .iter()
        .find_map(|b| {
            let out = std::process::Command::new("git")
                .current_dir(root)
                .args(["merge-base", "HEAD", b])
                .output()
                .ok()?;
            out.status
                .success()
                .then(|| String::from_utf8_lossy(&out.stdout).trim().to_string())
        })
        .unwrap_or_else(|| "HEAD".to_string());
    let out = std::process::Command::new("git")
        .current_dir(root)
        .args(["diff", "--name-only", &base])
        .output()
        .map_err(|e| format!("running git diff: {e}"))?;
    if !out.status.success() {
        return Err(format!("git diff exited with {}", out.status));
    }
    let mut set: std::collections::BTreeSet<String> =
        String::from_utf8_lossy(&out.stdout).lines().map(str::to_string).collect();
    // Untracked files are changes too.
    let out = std::process::Command::new("git")
        .current_dir(root)
        .args(["ls-files", "--others", "--exclude-standard"])
        .output()
        .map_err(|e| format!("running git ls-files: {e}"))?;
    if out.status.success() {
        set.extend(String::from_utf8_lossy(&out.stdout).lines().map(str::to_string));
    }
    Ok(set)
}

/// `cargo xtask` runs with the workspace root as cwd (via the alias);
/// fall back to CARGO_MANIFEST_DIR/../.. when invoked directly.
fn workspace_root() -> PathBuf {
    let cwd = std::env::current_dir().expect("cwd");
    if cwd.join("Cargo.toml").is_file() && cwd.join("crates").is_dir() {
        return cwd;
    }
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("xtask lives at <root>/crates/xtask")
        .to_path_buf()
}
