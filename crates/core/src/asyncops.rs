//! Asynchronous operations: `copy_async`, asynchronous collectives, and
//! `cofence` (paper §2.1, §3.3, §3.5).
//!
//! The heart of this module is the four-way mapping the paper derives from
//! MPI-3's completion semantics (§3.3):
//!
//! 1. no completion events requested → plain `MPI_PUT`/`MPI_GET`,
//!    implicitly synchronized (completed by the next `cofence`/`finish`);
//! 2. events on a GET-style copy → `MPI_RGET`, whose request certifies
//!    local *and* remote completion;
//! 3. only a *source* (local-completion) event on a PUT-style copy →
//!    `MPI_RPUT`, whose request certifies local completion;
//! 4. a *destination* (remote-completion) event on a PUT-style copy →
//!    **active messages**: MPI-3 has no way to observe remote completion
//!    of a put, so the data travels in an AM and the target posts the
//!    event after copying it in. "Obviously not as efficient… but it
//!    provides the necessary functionality."
//!
//! On the GASNet substrate puts are remotely complete at sync, so case 4
//! becomes put + notify — one of the baseline's structural advantages.

use caf_fabric::pod::as_bytes;
use caf_fabric::Pod;

use crate::backend::Backend;
use crate::coarray::{Coarray, RegionInner};
use crate::event::Event;
use crate::image::Image;
use crate::rtmsg::RtMsg;
use crate::stats::StatCat;
use crate::team::Team;

/// Optional event arguments of an asynchronous operation (paper §2.1):
/// the *predicate* gates the start, the *source* event signals the source
/// buffer is reusable, the *destination* event signals delivery.
#[derive(Debug, Clone, Copy, Default)]
pub struct AsyncOpts {
    /// Start only after this event is posted locally.
    pub predicate: Option<Event>,
    /// Post (locally) when the source buffer is reusable.
    pub src_event: Option<Event>,
    /// Post (at the destination image) when the data has been delivered.
    pub dst_event: Option<Event>,
}

impl AsyncOpts {
    /// No events: implicit synchronization (case 1).
    pub fn none() -> Self {
        Self::default()
    }

    /// Only a source (local-completion) event (case 3).
    pub fn with_src(ev: Event) -> Self {
        AsyncOpts {
            src_event: Some(ev),
            ..Self::default()
        }
    }

    /// A destination (remote-completion) event (case 4).
    pub fn with_dst(ev: Event) -> Self {
        AsyncOpts {
            dst_event: Some(ev),
            ..Self::default()
        }
    }
}

impl Image {
    /// Asynchronous PUT-style copy: local `data` into `member`'s part of
    /// the coarray at element offset `elem_off`.
    pub fn copy_async_put<T: Pod>(
        &self,
        ca: &Coarray<T>,
        member: usize,
        elem_off: usize,
        data: &[T],
        opts: AsyncOpts,
    ) {
        if let Some(pred) = opts.predicate {
            let posted = *self.events.borrow().get(&pred.id).unwrap_or(&0) > 0;
            if !posted {
                // Defer the whole operation until the predicate fires.
                let ca = ca.clone();
                let data = data.to_vec();
                let rest = AsyncOpts {
                    predicate: None,
                    ..opts
                };
                self.deferred.borrow_mut().push((
                    pred.id,
                    Box::new(move |img: &Image| {
                        img.copy_async_put(&ca, member, elem_off, &data, rest);
                    }),
                ));
                return;
            }
        }
        self.stats().timed(StatCat::CopyAsync, || {
            self.put_with_events(ca, member, elem_off, data, opts.src_event, opts.dst_event);
        });
    }

    fn put_with_events<T: Pod>(
        &self,
        ca: &Coarray<T>,
        member: usize,
        elem_off: usize,
        data: &[T],
        src_event: Option<Event>,
        dst_event: Option<Event>,
    ) {
        let disp = elem_off * std::mem::size_of::<T>();
        #[cfg(feature = "check")]
        caf_check::hooks::hb_access(
            self.this_image(),
            ca.region.id(),
            ca.global_member(member),
            disp as u64,
            std::mem::size_of_val(data) as u64,
            true,
        );
        // Cases 1 and 3 (no remote-completion event) may coalesce into an
        // aggregation bucket: the record travels in a batched AM at the
        // next drain, which is never later than the direct put's release
        // point, so implicit-synchronization semantics are unchanged. The
        // payload is copied into the record, so local completion — all a
        // source event certifies — is immediate.
        if dst_event.is_none()
            && self.agg_try_put(
                ca.region.id(),
                ca.global_member(member),
                disp,
                caf_fabric::pod::as_bytes(data),
            )
        {
            if let Some(src) = src_event {
                self.post_event_local_hb(src.id);
            }
            return;
        }
        match (&self.backend, &*ca.region) {
            (Backend::Mpi(b), RegionInner::Mpi { win }) => {
                match dst_event {
                    None => {
                        if src_event.is_some() {
                            // Case 3: MPI_RPUT — local completion only.
                            b.mpi.rput(win, member, disp, data).expect("rput").wait();
                        } else {
                            // Case 1: plain MPI_PUT, implicitly synchronized.
                            b.mpi.put(win, member, disp, data).expect("put");
                            self.implicit_puts.set(self.implicit_puts.get() + 1);
                        }
                    }
                    Some(dst) => {
                        // Case 4: remote-completion event requested — the
                        // data must travel by AM so the target can post the
                        // event after delivery.
                        let target = win.comm().global_rank(member);
                        if target == self.this_image() {
                            b.mpi.win_write_local(win, disp, data).expect("self put");
                            self.post_event_local_hb(dst.id);
                        } else {
                            #[cfg(feature = "check")]
                            caf_check::hooks::hb_send(
                                self.this_image(),
                                caf_check::hooks::NS_EVENT,
                                dst.id,
                                target,
                            );
                            self.backend.send_rtmsg(
                                target,
                                &RtMsg::PutWithEvent {
                                    region_id: win.id(),
                                    offset: disp as u64,
                                    event_id: dst.id,
                                    data: as_bytes(data).to_vec(),
                                },
                            );
                        }
                    }
                }
            }
            (Backend::Gasnet(bg), RegionInner::Gasnet { offsets, members, .. }) => {
                // GASNet puts are remotely complete at sync; a destination
                // event is just put + notify.
                bg.g.put_nbi(members[member], offsets[member] + disp, data)
                    .expect("put_nbi");
                self.implicit_puts.set(self.implicit_puts.get() + 1);
                if let Some(dst) = dst_event {
                    bg.g.wait_syncnbi_puts();
                    let target = members[member];
                    if target == self.this_image() {
                        self.post_event_local_hb(dst.id);
                    } else {
                        #[cfg(feature = "check")]
                        caf_check::hooks::hb_send(
                            self.this_image(),
                            caf_check::hooks::NS_EVENT,
                            dst.id,
                            target,
                        );
                        self.backend
                            .send_rtmsg(target, &RtMsg::EventNotify { event_id: dst.id });
                    }
                }
            }
            _ => panic!("coarray does not belong to this substrate"),
        }
        // The source buffer was consumed synchronously on this substrate;
        // its event can post immediately (local completion).
        if let Some(src) = src_event {
            self.post_event_local_hb(src.id);
        }
    }

    /// Asynchronous GET-style copy: fetch `len` elements from `member`'s
    /// part into a fresh vector. Case 2 of the mapping: the request
    /// certifies local and remote completion, so both events (if any) post
    /// at return.
    pub fn copy_async_get<T: Pod>(
        &self,
        ca: &Coarray<T>,
        member: usize,
        elem_off: usize,
        len: usize,
        opts: AsyncOpts,
    ) -> Vec<T> {
        self.stats().timed(StatCat::CopyAsync, || {
            let mut out = crate::zeroed_vec::<T>(len);
            let disp = elem_off * std::mem::size_of::<T>();
            #[cfg(feature = "check")]
            caf_check::hooks::hb_access(
                self.this_image(),
                ca.region.id(),
                ca.global_member(member),
                disp as u64,
                (len * std::mem::size_of::<T>()) as u64,
                false,
            );
            match (&self.backend, &*ca.region) {
                (Backend::Mpi(b), RegionInner::Mpi { win }) => {
                    let req = b.mpi.rget::<T>(win, member, disp, len).expect("rget");
                    out = req.wait();
                }
                (Backend::Gasnet(bg), RegionInner::Gasnet { offsets, members, .. }) => {
                    bg.g.get(members[member], offsets[member] + disp, &mut out)
                        .expect("get");
                }
                _ => panic!("coarray does not belong to this substrate"),
            }
            if let Some(src) = opts.src_event {
                self.post_event_local_hb(src.id);
            }
            if let Some(dst) = opts.dst_event {
                self.post_event_local_hb(dst.id);
            }
            out
        })
    }

    /// `cofence`: block until all implicitly synchronized asynchronous
    /// operations issued before it are locally complete (their buffers are
    /// reusable). Also a compiler barrier in CAF; in Rust the borrow rules
    /// already prevent reordering observable here.
    pub fn cofence(&self) {
        match &self.backend {
            Backend::Mpi(_) => {
                // MPI_WAITALL over the tracked request arrays (paper §3.5);
                // requests on this substrate are complete at issue.
            }
            Backend::Gasnet(b) => b.g.wait_syncnbi_all(),
        }
        self.complete_implicit_local();
    }

    /// `cofence` with a completion event (paper §3.5: "the cofence
    /// statement takes an optional argument that a user can use to request
    /// local completion notification of PUT or GET operations"): completes
    /// the implicit lists and posts `ev` locally.
    pub fn cofence_with_event(&self, ev: &Event) {
        self.cofence();
        self.post_event_local_hb(ev.id);
    }

    /// Number of implicitly synchronized puts issued since the last
    /// `cofence`/`finish` (introspection for tests and benches).
    pub fn implicit_put_count(&self) -> u64 {
        self.implicit_puts.get()
    }

    /// General asynchronous copy between two coarray locations, either or
    /// both remote (`copy_async` with coarray source *and* destination —
    /// the full generality of paper §2.1: "the source and destination may
    /// be local or remote coarrays"). Composed of a GET-style fetch and a
    /// PUT-style store; events follow the §3.3 mapping of the store side.
    #[allow(clippy::too_many_arguments)]
    pub fn copy_async_between<T: Pod>(
        &self,
        src: &Coarray<T>,
        src_member: usize,
        src_off: usize,
        dst: &Coarray<T>,
        dst_member: usize,
        dst_off: usize,
        len: usize,
        opts: AsyncOpts,
    ) {
        if let Some(pred) = opts.predicate {
            let posted = *self.events.borrow().get(&pred.id).unwrap_or(&0) > 0;
            if !posted {
                let src = src.clone();
                let dst = dst.clone();
                let rest = AsyncOpts {
                    predicate: None,
                    ..opts
                };
                self.deferred.borrow_mut().push((
                    pred.id,
                    Box::new(move |img: &Image| {
                        img.copy_async_between(
                            &src, src_member, src_off, &dst, dst_member, dst_off, len, rest,
                        );
                    }),
                ));
                return;
            }
        }
        // Fetch (local+remote complete at return: case 2)...
        let data = self.copy_async_get(src, src_member, src_off, len, AsyncOpts::none());
        // ...then store with the requested completion events (cases 1/3/4).
        self.put_with_events(
            dst,
            dst_member,
            dst_off,
            &data,
            opts.src_event,
            opts.dst_event,
        );
    }

    /// Asynchronous team broadcast, with the async-collective event
    /// convention of paper §2.1.
    pub fn team_broadcast_async<T: Pod>(
        &self,
        team: &Team,
        root: usize,
        data: &mut Vec<T>,
        data_event: Option<Event>,
        op_event: Option<Event>,
    ) {
        self.broadcast(team, root, data);
        if let Some(ev) = data_event {
            self.post_event_local_hb(ev.id);
        }
        if let Some(ev) = op_event {
            self.post_event_local_hb(ev.id);
        }
    }

    /// Asynchronous team allgather, with the async-collective event
    /// convention of paper §2.1.
    pub fn team_allgather_async<T: Pod>(
        &self,
        team: &Team,
        data: &[T],
        data_event: Option<Event>,
        op_event: Option<Event>,
    ) -> Vec<T> {
        let out = self.allgather(team, data);
        if let Some(ev) = data_event {
            self.post_event_local_hb(ev.id);
        }
        if let Some(ev) = op_event {
            self.post_event_local_hb(ev.id);
        }
        out
    }

    /// Asynchronous team reduction (`team_reduce_async`): the result
    /// arrives in the returned vector; the *data* event posts when the
    /// local buffer is readable, the *operation* event when it is
    /// modifiable (paper §2.1). Executed eagerly on this substrate.
    pub fn team_reduce_async<T: Pod>(
        &self,
        team: &Team,
        data: &[T],
        f: impl Fn(T, T) -> T,
        data_event: Option<Event>,
        op_event: Option<Event>,
    ) -> Vec<T> {
        let out = self.allreduce(team, data, f);
        if let Some(ev) = data_event {
            self.post_event_local_hb(ev.id);
        }
        if let Some(ev) = op_event {
            self.post_event_local_hb(ev.id);
        }
        out
    }

    /// Asynchronous team alltoall, with the same event convention.
    pub fn team_alltoall_async<T: Pod>(
        &self,
        team: &Team,
        data: &[T],
        block: usize,
        data_event: Option<Event>,
        op_event: Option<Event>,
    ) -> Vec<T> {
        let out = self.alltoall(team, data, block);
        if let Some(ev) = data_event {
            self.post_event_local_hb(ev.id);
        }
        if let Some(ev) = op_event {
            self.post_event_local_hb(ev.id);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::{CafConfig, CafUniverse, SubstrateKind};

    fn both(n: usize, f: impl Fn(&Image) + Send + Sync) {
        for kind in [SubstrateKind::Mpi, SubstrateKind::Gasnet] {
            CafUniverse::run_with_config(n, CafConfig::on(kind), |img| f(img));
        }
    }

    #[test]
    fn case1_implicit_put_completed_by_cofence_and_barrier() {
        both(2, |img| {
            let w = img.team_world();
            let ca: Coarray<u64> = img.coarray_alloc(&w, 2);
            if img.this_image() == 0 {
                img.copy_async_put(&ca, 1, 0, &[42, 43], AsyncOpts::none());
                assert_eq!(img.implicit_put_count(), 1);
                img.cofence();
                assert_eq!(img.implicit_put_count(), 0);
                img.backend_flush_all();
            }
            img.sync_all();
            if img.this_image() == 1 {
                assert_eq!(ca.local_vec(img), vec![42, 43]);
            }
            img.coarray_free(&w, ca);
        });
    }

    #[test]
    fn case3_src_event_posts_locally() {
        both(2, |img| {
            let w = img.team_world();
            let ca: Coarray<u64> = img.coarray_alloc(&w, 1);
            let src_ev = img.event_alloc(&w);
            if img.this_image() == 0 {
                img.copy_async_put(&ca, 1, 0, &[5], AsyncOpts::with_src(src_ev));
                // Local completion: the source event must be waitable here.
                img.event_wait(&src_ev);
            }
            img.sync_all();
            img.coarray_free(&w, ca);
        });
    }

    #[test]
    fn case4_dst_event_posts_at_destination_after_delivery() {
        both(2, |img| {
            let w = img.team_world();
            let ca: Coarray<u64> = img.coarray_alloc(&w, 1);
            let dst_ev = img.event_alloc(&w);
            if img.this_image() == 0 {
                img.copy_async_put(&ca, 1, 0, &[1234], AsyncOpts::with_dst(dst_ev));
            } else {
                img.event_wait(&dst_ev);
                // Data must be there once the event fires.
                assert_eq!(ca.local_vec(img)[0], 1234);
            }
            img.sync_all();
            img.coarray_free(&w, ca);
        });
    }

    #[test]
    fn case2_get_posts_both_events() {
        both(2, |img| {
            let w = img.team_world();
            let ca: Coarray<u64> = img.coarray_alloc(&w, 1);
            let a = img.event_alloc(&w);
            let b = img.event_alloc(&w);
            ca.local_write(img, 0, &[img.this_image() as u64 + 10]);
            img.sync_all();
            let peer = 1 - img.this_image();
            let got = img.copy_async_get(
                &ca,
                peer,
                0,
                1,
                AsyncOpts {
                    predicate: None,
                    src_event: Some(a),
                    dst_event: Some(b),
                },
            );
            assert_eq!(got[0], peer as u64 + 10);
            img.event_wait(&a);
            img.event_wait(&b);
            img.sync_all();
            img.coarray_free(&w, ca);
        });
    }

    #[test]
    fn predicate_defers_until_event() {
        both(2, |img| {
            let w = img.team_world();
            let ca: Coarray<u64> = img.coarray_alloc(&w, 1);
            let pred = img.event_alloc(&w);
            let dst = img.event_alloc(&w);
            if img.this_image() == 0 {
                // Issue the copy gated on `pred` — it must NOT run yet.
                img.copy_async_put(
                    &ca,
                    1,
                    0,
                    &[99],
                    AsyncOpts {
                        predicate: Some(pred),
                        src_event: None,
                        dst_event: Some(dst),
                    },
                );
                // Nothing delivered yet; now fire the predicate locally.
                img.post_event_local(pred.id);
            } else {
                img.event_wait(&dst);
                assert_eq!(ca.local_vec(img)[0], 99);
            }
            img.sync_all();
            img.coarray_free(&w, ca);
        });
    }

    #[test]
    fn predicate_already_posted_runs_immediately() {
        both(1, |img| {
            let w = img.team_world();
            let ca: Coarray<u64> = img.coarray_alloc(&w, 1);
            let pred = img.event_alloc(&w);
            img.post_event_local(pred.id);
            img.copy_async_put(
                &ca,
                0,
                0,
                &[7],
                AsyncOpts {
                    predicate: Some(pred),
                    src_event: None,
                    dst_event: None,
                },
            );
            img.cofence();
            img.backend_flush_all();
            assert_eq!(ca.local_vec(img)[0], 7);
            img.coarray_free(&w, ca);
        });
    }

    #[test]
    fn copy_between_remote_coarrays() {
        both(3, |img| {
            let w = img.team_world();
            let a: Coarray<u64> = img.coarray_alloc(&w, 4);
            let b: Coarray<u64> = img.coarray_alloc(&w, 4);
            // Image 1's part of `a` holds known data.
            if img.this_image() == 1 {
                a.local_write(img, 0, &[11, 12, 13, 14]);
            }
            img.sync_all();
            // Image 0 copies a[1] → b[2] with a destination event.
            let dst_ev = img.event_alloc(&w);
            if img.this_image() == 0 {
                img.copy_async_between(&a, 1, 1, &b, 2, 0, 3, AsyncOpts::with_dst(dst_ev));
            }
            if img.this_image() == 2 {
                img.event_wait(&dst_ev);
                assert_eq!(b.local_vec(img)[..3], [12, 13, 14]);
            }
            img.sync_all();
            img.coarray_free(&w, a);
            img.coarray_free(&w, b);
        });
    }

    #[test]
    fn copy_between_with_predicate() {
        both(2, |img| {
            let w = img.team_world();
            let a: Coarray<u64> = img.coarray_alloc(&w, 2);
            let b: Coarray<u64> = img.coarray_alloc(&w, 2);
            let pred = img.event_alloc(&w);
            let done = img.event_alloc(&w);
            a.local_write(img, 0, &[img.this_image() as u64 + 40, 0]);
            img.sync_all();
            if img.this_image() == 0 {
                // Deferred until pred fires locally.
                img.copy_async_between(
                    &a,
                    1,
                    0,
                    &b,
                    1,
                    1,
                    1,
                    AsyncOpts {
                        predicate: Some(pred),
                        src_event: None,
                        dst_event: Some(done),
                    },
                );
                img.post_event_local(pred.id);
            } else {
                img.event_wait(&done);
                assert_eq!(b.local_vec(img)[1], 41);
            }
            img.sync_all();
            img.coarray_free(&w, a);
            img.coarray_free(&w, b);
        });
    }

    #[test]
    fn async_broadcast_and_allgather_post_events() {
        both(3, |img| {
            let w = img.team_world();
            let ev1 = img.event_alloc(&w);
            let ev2 = img.event_alloc(&w);
            let mut data = if img.this_image() == 0 {
                vec![9u64]
            } else {
                Vec::new()
            };
            img.team_broadcast_async(&w, 0, &mut data, Some(ev1), None);
            assert_eq!(data, vec![9]);
            img.event_wait(&ev1);

            let all = img.team_allgather_async(&w, &[img.this_image() as u64], Some(ev2), None);
            assert_eq!(all, vec![0, 1, 2]);
            img.event_wait(&ev2);
        });
    }

    #[test]
    fn cofence_with_event_posts() {
        both(1, |img| {
            let w = img.team_world();
            let ca: Coarray<u64> = img.coarray_alloc(&w, 1);
            let ev = img.event_alloc(&w);
            img.copy_async_put(&ca, 0, 0, &[3], AsyncOpts::none());
            img.cofence_with_event(&ev);
            img.event_wait(&ev);
            assert_eq!(img.implicit_put_count(), 0);
            img.coarray_free(&w, ca);
        });
    }

    #[test]
    fn async_collectives_post_events() {
        both(4, |img| {
            let w = img.team_world();
            let data_ev = img.event_alloc(&w);
            let op_ev = img.event_alloc(&w);
            let s = img.team_reduce_async(
                &w,
                &[1u64],
                |a, b| a + b,
                Some(data_ev),
                Some(op_ev),
            );
            assert_eq!(s[0], 4);
            img.event_wait(&data_ev);
            img.event_wait(&op_ev);
        });
    }
}
