//! Small-put aggregation: the `caf-agg` subsystem wired into the runtime.
//!
//! The paper's §4.1 decomposition shows RandomAccess-shaped traffic —
//! millions of tiny remote updates — drowning in per-message overhead on
//! both substrates. This module is the runtime half of the remedy (the
//! data structures live in `crates/agg`):
//!
//! * **Enqueue** — eligible case-1 async puts and the explicit
//!   accumulate API park a compact record in the bucket of its
//!   (next-hop) target instead of issuing a tiny one-sided operation.
//! * **Drain** — a bucket becomes exactly one [`RtMsg::AggBatch`] when a
//!   size/count trigger fires, at every release point (`event_notify`,
//!   `finish`, shipped-function completion), or when an intermediate
//!   rank forwards. On CAF-MPI the batch is one `MPI_Isend` on the
//!   runtime communicator (the §3.2 AM layer); on CAF-GASNet it is one
//!   genuine medium AM. Either way a whole bucket costs one message.
//! * **Deliver** — the target unpacks during its progress engine:
//!   `Put` records overwrite region bytes, `Xor`/`Add` records are
//!   read-modify-written serially by the owner (atomic by construction).
//!   With routing on, records not addressed to the unpacking image are
//!   re-bucketed toward their next hop and forwarded eagerly —
//!   store-and-forward, ≤ log2(P) hops per record.
//!
//! **Completion.** Batched delivery is AM-based, so remote completion is
//! not a window flush; it rides the runtime's existing machinery
//! instead. Before an `event_notify` the relevant buckets drain, and the
//! AM channel's FIFO order guarantees the batch is applied before the
//! notification wakes the waiter. Inside `finish`, every batch (and
//! every forwarded hop) is accounted to the enclosing finish id exactly
//! like a shipped function, so Yang's termination detection counts
//! in-flight batches and store-and-forward chains. `finish_fast` adds
//! poll+barrier rounds (one per routing hop) to propagate chains without
//! counters. Multi-hop routing relies on those mechanisms; with routing
//! on, use `finish`/`finish_fast` release semantics (DESIGN.md §13).
//!
//! **Happens-before.** A drained bucket carries the union of its
//! records' edges for free: each enqueue happens before the drain in
//! program order, so the origin's vector clock at `hb_send` time already
//! joins every record's accesses; the unpacking image joins it via
//! `hb_recv` before applying, and forwarding propagates transitively.

use caf_agg::{decode_batch, encode_batch, AggConfig, AggStats, Record, RecordOp};
use caf_gasnetsim::AM_MAX_MEDIUM;

use crate::coarray::Coarray;
use crate::image::{Image, SubstrateKind};
use crate::rtmsg::RtMsg;

/// Clamp the user's aggregation knobs to what the job can actually run:
/// routing needs a power-of-two image count, and on the GASNet substrate
/// a worst-case encoded batch (capacity overshoot included) must fit one
/// medium AM with headroom for the runtime-message header.
pub(crate) fn effective_agg_config(
    mut cfg: AggConfig,
    substrate: SubstrateKind,
    n: usize,
) -> AggConfig {
    if cfg.routing && !n.is_power_of_two() {
        cfg.routing = false;
    }
    if matches!(substrate, SubstrateKind::Gasnet) {
        let lim = AM_MAX_MEDIUM - 64;
        // A bucket drains when payload reaches `bucket_bytes`, so it can
        // overshoot by one record: budget twice the payload capacity.
        cfg.bucket_bytes = cfg.bucket_bytes.min(lim / 4);
        let rec_budget =
            (lim - caf_agg::BATCH_HEADER - 2 * cfg.bucket_bytes) / caf_agg::REC_HEADER;
        cfg.bucket_records = cfg.bucket_records.min(rec_budget.max(1));
    }
    cfg.bucket_bytes = cfg.bucket_bytes.max(8);
    cfg.bucket_records = cfg.bucket_records.max(1);
    cfg.max_record_bytes = cfg.max_record_bytes.min(cfg.bucket_bytes);
    cfg
}

impl Image {
    /// The *effective* aggregation configuration this job runs under —
    /// [`crate::CafConfig::agg`] after the runtime clamped it (routing
    /// off unless the image count is a power of two; bucket capacities
    /// bounded by the GASNet medium-AM limit on that substrate).
    pub fn agg_config(&self) -> AggConfig {
        self.agg.borrow().config()
    }

    /// Deterministic aggregation counters for this image (enqueued /
    /// drained / forwarded records and buckets).
    pub fn agg_stats(&self) -> AggStats {
        self.agg.borrow().stats()
    }

    /// Records currently parked in this image's buckets (introspection
    /// for tests; drained at the next release point).
    pub fn agg_pending_records(&self) -> usize {
        self.agg.borrow().pending_records()
    }

    pub(crate) fn agg_enabled(&self) -> bool {
        self.agg.borrow().config().enabled
    }

    /// The innermost active finish block, for batch accounting.
    fn agg_fid(&self) -> u64 {
        self.finish_stack.borrow().last().copied().unwrap_or(0)
    }

    /// Enqueue a remote XOR-accumulate of `operand` into element
    /// `elem_off` of `member`'s part — the RandomAccess update as a
    /// coalesced record. Applied serially by the owning image, so
    /// concurrent updates from any set of origins are atomic; XOR
    /// commutes, so delivery order does not matter. Requires aggregation
    /// to be enabled; remote completion follows the release rules of
    /// DESIGN.md §13 (use `finish` when routing is on).
    pub fn agg_accumulate_xor(
        &self,
        ca: &Coarray<u64>,
        member: usize,
        elem_off: usize,
        operand: u64,
    ) {
        self.agg_accumulate(ca, member, elem_off, operand, RecordOp::Xor);
    }

    /// As [`Image::agg_accumulate_xor`] with a wrapping add.
    pub fn agg_accumulate_add(
        &self,
        ca: &Coarray<u64>,
        member: usize,
        elem_off: usize,
        operand: u64,
    ) {
        self.agg_accumulate(ca, member, elem_off, operand, RecordOp::Add);
    }

    fn agg_accumulate(
        &self,
        ca: &Coarray<u64>,
        member: usize,
        elem_off: usize,
        operand: u64,
        op: RecordOp,
    ) {
        assert!(
            self.agg_enabled(),
            "agg_accumulate_* requires CafConfig::agg.enabled"
        );
        let disp = elem_off * std::mem::size_of::<u64>();
        let dest = ca.global_member(member);
        if dest == self.this_image() {
            // Owner applies its own updates in place: no record, no hop.
            self.region_rmw_u64(ca.region.id(), disp, |v| apply_acc(op, v, operand));
            return;
        }
        self.agg_enqueue_record(Record {
            dest: dest as u32,
            op,
            region: ca.region.id(),
            offset: disp as u64,
            payload: operand.to_le_bytes().to_vec(),
        });
    }

    /// Try to coalesce a case-1 (implicitly synchronized) put. Returns
    /// `false` when the put must take the direct path: aggregation off,
    /// payload above `max_record_bytes`, or a self-put.
    pub(crate) fn agg_try_put(
        &self,
        region: u64,
        dest_global: usize,
        offset: usize,
        bytes: &[u8],
    ) -> bool {
        let cfg = self.agg.borrow().config();
        if !cfg.enabled || bytes.len() > cfg.max_record_bytes || dest_global == self.this_image()
        {
            return false;
        }
        self.agg_enqueue_record(Record {
            dest: dest_global as u32,
            op: RecordOp::Put,
            region,
            offset: offset as u64,
            payload: bytes.to_vec(),
        });
        // Still an implicitly synchronized put for `cofence` accounting
        // (the record's buffer was copied, so local completion is
        // immediate, matching the substrate's behaviour).
        self.implicit_puts.set(self.implicit_puts.get() + 1);
        true
    }

    fn agg_enqueue_record(&self, rec: Record) {
        let fid = self.agg_fid();
        if caf_trace::enabled() {
            let hop = self.agg.borrow().hop_for(rec.dest as usize);
            caf_trace::instant_d(
                caf_trace::Op::AggEnqueue,
                Some(hop),
                rec.payload.len() as u64,
                Some(rec.region),
                Some(rec.offset),
            );
        }
        let full = self.agg.borrow_mut().enqueue(rec);
        if let Some((target, records)) = full {
            // Capacity trigger: this bucket leaves now, attributed to the
            // innermost finish so termination detection can see it.
            self.agg_send_batch(target, records, fid);
        }
    }

    /// Drain every bucket toward its immediate target, accounting the
    /// batches to `fid`. Called at release points *before* the PR-4
    /// `release_all()`, so whatever the flush policy completes afterwards
    /// already includes nothing of the coalesced traffic — a drained
    /// bucket is one message, never O(records) flush work.
    pub(crate) fn agg_drain_all(&self, fid: u64) {
        if self.agg.borrow().is_empty() {
            return;
        }
        self.fault_point("agg_drain");
        let batches = self.agg.borrow_mut().drain_all();
        for (target, records) in batches {
            self.agg_send_batch(target, records, fid);
        }
    }

    /// Release-point drain with the innermost finish id.
    pub(crate) fn agg_drain_for_release(&self) {
        self.agg_drain_all(self.agg_fid());
    }

    /// Targeted-notify drain: only the bucket headed to `global`. With
    /// routing on there is no per-destination bucket to single out
    /// (records travel via hops), so everything drains.
    pub(crate) fn agg_drain_target(&self, global: usize) {
        if self.agg.borrow().config().routing {
            self.agg_drain_for_release();
            return;
        }
        let fid = self.agg_fid();
        let records = self.agg.borrow_mut().drain(global);
        if let Some(records) = records {
            self.agg_send_batch(global, records, fid);
        }
    }

    /// Ship one drained bucket as a single batched AM.
    ///
    /// Drain-time reroute: when the planned store-and-forward hop has
    /// failed, the batch is split per destination and sent *directly* —
    /// the hypercube route is an optimization, never a delivery
    /// requirement. Records whose final destination itself failed are
    /// abandoned (their target memory is gone); without this screen a
    /// routed record could be silently swallowed by the fabric's
    /// drop-on-dead send and survivors' puts would be lost with it.
    pub(crate) fn agg_send_batch(&self, target: usize, records: Vec<Record>, fid: u64) {
        debug_assert_ne!(target, self.this_image(), "batch to self");
        let fault = self.backend.fault();
        if fault.any_failed() && fault.is_failed(target) {
            let mut by_dest: std::collections::BTreeMap<usize, Vec<Record>> =
                std::collections::BTreeMap::new();
            let mut dropped = 0u64;
            let mut rerouted = 0u64;
            for rec in records {
                let dest = rec.dest as usize;
                if fault.is_failed(dest) {
                    dropped += 1;
                    continue;
                }
                rerouted += 1;
                by_dest.entry(dest).or_default().push(rec);
            }
            {
                let mut agg = self.agg.borrow_mut();
                agg.note_reroute(rerouted);
                agg.note_dropped_dead(dropped);
            }
            for (dest, recs) in by_dest {
                self.agg_send_batch(dest, recs, fid);
            }
            return;
        }
        // Shipped-function accounting (paper §3.5): the batch counts as
        // shipped at the origin and completed once the target applied it,
        // so Yang's loop inside `finish` awaits in-flight batches and
        // their forwarded continuations.
        self.finish_counters
            .borrow_mut()
            .entry(fid)
            .or_insert((0, 0))
            .0 += 1;
        // Structurally unique happens-before token: (image, counter).
        let ctr = self.agg_token_ctr.get() + 1;
        self.agg_token_ctr.set(ctr);
        let token = ((self.this_image() as u64 + 1) << 32) | ctr;
        let data = encode_batch(&records);
        if caf_trace::enabled() {
            caf_trace::instant_d(
                caf_trace::Op::AggDrain,
                Some(target),
                data.len() as u64,
                None,
                Some(records.len() as u64),
            );
        }
        // The batch carries the union of its records' happens-before
        // edges: every enqueue precedes this send in program order.
        #[cfg(feature = "check")]
        caf_check::hooks::hb_send(
            self.this_image(),
            caf_check::hooks::NS_AGG,
            token,
            target,
        );
        self.backend.send_rtmsg(
            target,
            &RtMsg::AggBatch {
                token,
                finish_id: fid,
                data,
            },
        );
    }

    /// Unpack one incoming batch: apply records addressed here, re-bucket
    /// and eagerly forward the rest toward their next hop (store-and-
    /// forward). Completion is accounted *after* forwards are shipped so
    /// the finish counters never transiently claim quiescence.
    pub(crate) fn handle_agg_batch(&self, token: u64, finish_id: u64, data: &[u8]) {
        #[cfg(feature = "check")]
        caf_check::hooks::hb_recv(self.this_image(), caf_check::hooks::NS_AGG, token);
        #[cfg(not(feature = "check"))]
        let _ = token;
        let records = decode_batch(data);
        let me = self.this_image();
        let mut sends: Vec<(usize, Vec<Record>)> = Vec::new();
        let mut touched: Vec<usize> = Vec::new();
        {
            let mut agg = self.agg.borrow_mut();
            for rec in records {
                if rec.dest as usize == me {
                    self.agg_apply_record(&rec);
                    continue;
                }
                let hop = agg.hop_for(rec.dest as usize);
                if caf_trace::enabled() {
                    caf_trace::instant_d(
                        caf_trace::Op::AggForward,
                        Some(hop),
                        rec.payload.len() as u64,
                        Some(rec.region),
                        Some(rec.offset),
                    );
                }
                agg.note_forward();
                match agg.enqueue(rec) {
                    Some(full) => sends.push(full),
                    None => touched.push(hop),
                }
            }
            // Forwarded records leave with this batch, merged with
            // whatever was already parked for those hops (early delivery
            // of implicitly synchronized puts is always legal).
            touched.sort_unstable();
            touched.dedup();
            for hop in touched {
                if let Some(r) = agg.drain(hop) {
                    sends.push((hop, r));
                }
            }
        }
        for (target, records) in sends {
            self.agg_send_batch(target, records, finish_id);
        }
        self.finish_counters
            .borrow_mut()
            .entry(finish_id)
            .or_insert((0, 0))
            .1 += 1;
    }

    fn agg_apply_record(&self, rec: &Record) {
        match rec.op {
            RecordOp::Put => {
                self.region_write_local(rec.region, rec.offset as usize, &rec.payload)
            }
            RecordOp::Xor | RecordOp::Add => {
                let operand = u64::from_le_bytes(
                    rec.payload
                        .as_slice()
                        .try_into()
                        .expect("accumulate operand must be 8 bytes"),
                );
                self.region_rmw_u64(rec.region, rec.offset as usize, |v| {
                    apply_acc(rec.op, v, operand)
                });
            }
        }
    }
}

fn apply_acc(op: RecordOp, v: u64, operand: u64) -> u64 {
    match op {
        RecordOp::Xor => v ^ operand,
        RecordOp::Add => v.wrapping_add(operand),
        RecordOp::Put => unreachable!("puts are not read-modify-write"),
    }
}

#[cfg(test)]
mod tests {
    use caf_agg::AggConfig;

    use crate::asyncops::AsyncOpts;
    use crate::coarray::Coarray;
    use crate::image::{CafConfig, CafUniverse, SubstrateKind};

    fn agg_cfg(kind: SubstrateKind) -> CafConfig {
        CafConfig {
            agg: AggConfig::on(),
            ..CafConfig::on(kind)
        }
    }

    #[test]
    fn effective_config_clamps_routing_and_gasnet_buckets() {
        use super::effective_agg_config;
        let routed = AggConfig::routed();
        assert!(!effective_agg_config(routed, SubstrateKind::Mpi, 6).routing);
        assert!(effective_agg_config(routed, SubstrateKind::Mpi, 8).routing);
        let huge = AggConfig {
            bucket_bytes: 1 << 20,
            bucket_records: 1 << 20,
            ..AggConfig::on()
        };
        let g = effective_agg_config(huge, SubstrateKind::Gasnet, 4);
        assert!(
            g.max_encoded_len() <= caf_gasnetsim::AM_MAX_MEDIUM,
            "clamped bucket must fit a medium AM ({} > {})",
            g.max_encoded_len(),
            caf_gasnetsim::AM_MAX_MEDIUM
        );
        // MPI isends have no medium limit: knobs pass through.
        let m = effective_agg_config(huge, SubstrateKind::Mpi, 4);
        assert_eq!(m.bucket_bytes, 1 << 20);
    }

    #[test]
    fn bucketed_puts_release_on_notify() {
        for kind in [SubstrateKind::Mpi, SubstrateKind::Gasnet] {
            CafUniverse::run_with_config(2, agg_cfg(kind), |img| {
                let w = img.team_world();
                let ca: Coarray<u64> = img.coarray_alloc(&w, 8);
                let ev = img.event_alloc(&w);
                if img.this_image() == 0 {
                    for i in 0..8usize {
                        img.copy_async_put(&ca, 1, i, &[100 + i as u64], AsyncOpts::none());
                    }
                    // Small puts parked, not yet on the wire.
                    assert!(img.agg_pending_records() > 0);
                    img.event_notify(&w, &ev, 1);
                    assert_eq!(img.agg_pending_records(), 0);
                } else {
                    img.event_wait(&ev);
                    let got = ca.local_vec(img);
                    let want: Vec<u64> = (0..8).map(|i| 100 + i as u64).collect();
                    assert_eq!(got, want, "substrate {kind:?}");
                }
                img.sync_all();
                img.coarray_free(&w, ca);
            });
        }
    }

    #[test]
    fn capacity_trigger_ships_mid_stream() {
        let cfg = CafConfig {
            agg: AggConfig {
                bucket_records: 4,
                ..AggConfig::on()
            },
            ..CafConfig::on(SubstrateKind::Mpi)
        };
        CafUniverse::run_with_config(2, cfg, |img| {
            let w = img.team_world();
            let ca: Coarray<u64> = img.coarray_alloc(&w, 16);
            let ev = img.event_alloc(&w);
            if img.this_image() == 0 {
                for i in 0..10usize {
                    img.copy_async_put(&ca, 1, i, &[i as u64 + 1], AsyncOpts::none());
                }
                // 10 records, capacity 4: two buckets already shipped.
                assert_eq!(img.agg_stats().drained_buckets, 2);
                assert_eq!(img.agg_pending_records(), 2);
                img.event_notify(&w, &ev, 1);
                assert_eq!(img.agg_stats().drained_buckets, 3);
            } else {
                img.event_wait(&ev);
                let got = ca.local_vec(img);
                for (i, &v) in got.iter().enumerate().take(10) {
                    assert_eq!(v, i as u64 + 1);
                }
            }
            img.sync_all();
            img.coarray_free(&w, ca);
        });
    }

    #[test]
    fn accumulates_apply_atomically_under_finish() {
        for kind in [SubstrateKind::Mpi, SubstrateKind::Gasnet] {
            let p = 4;
            CafUniverse::run_with_config(p, agg_cfg(kind), |img| {
                let w = img.team_world();
                let ca: Coarray<u64> = img.coarray_alloc(&w, 2);
                // Everyone adds into both slots of image 0, and xors a
                // known pattern into image 1.
                img.finish(&w, |img| {
                    for _ in 0..50 {
                        img.agg_accumulate_add(&ca, 0, 0, 1);
                    }
                    img.agg_accumulate_xor(&ca, 1, 1, 1u64 << img.this_image());
                });
                if img.this_image() == 0 {
                    assert_eq!(ca.local_vec(img)[0], (50 * p) as u64);
                } else if img.this_image() == 1 {
                    assert_eq!(ca.local_vec(img)[1], 0b1111);
                }
                img.coarray_free(&w, ca);
            });
        }
    }

    #[test]
    fn routed_records_arrive_via_hops_under_finish() {
        let cfg = CafConfig {
            agg: AggConfig::routed(),
            ..CafConfig::on(SubstrateKind::Mpi)
        };
        let p = 8;
        let forwards: Vec<u64> = CafUniverse::run_with_config(p, cfg, |img| {
            let w = img.team_world();
            let ca: Coarray<u64> = img.coarray_alloc(&w, p);
            img.finish(&w, |img| {
                // All-to-all of single-word adds: most pairs differ in
                // more than one address bit, so forwarding must happen.
                for dest in 0..p {
                    if dest != img.this_image() {
                        img.agg_accumulate_add(&ca, dest, img.this_image(), 7);
                    }
                }
            });
            let local = ca.local_vec(img);
            for (src, &v) in local.iter().enumerate() {
                let want = if src == img.this_image() { 0 } else { 7 };
                assert_eq!(v, want, "slot {src} at {}", img.this_image());
            }
            img.sync_all();
            img.coarray_free(&w, ca);
            img.agg_stats().forwarded
        });
        assert!(
            forwards.iter().sum::<u64>() > 0,
            "8-image all-to-all must route through intermediate hops"
        );
    }

    #[test]
    fn finish_fast_propagates_batches() {
        for routing in [false, true] {
            let cfg = CafConfig {
                agg: AggConfig {
                    routing,
                    ..AggConfig::on()
                },
                ..CafConfig::on(SubstrateKind::Mpi)
            };
            let p = 4;
            CafUniverse::run_with_config(p, cfg, |img| {
                let w = img.team_world();
                let ca: Coarray<u64> = img.coarray_alloc(&w, 1);
                img.finish_fast(&w, |img| {
                    let peer = (img.this_image() + 1) % p;
                    img.copy_async_put(&ca, peer, 0, &[img.this_image() as u64 + 10], AsyncOpts::none());
                });
                let writer = (img.this_image() + p - 1) % p;
                assert_eq!(ca.local_vec(img)[0], writer as u64 + 10);
                img.coarray_free(&w, ca);
            });
        }
    }

    #[test]
    fn shipped_functions_drain_their_buckets() {
        CafUniverse::run_with_config(2, agg_cfg(SubstrateKind::Mpi), |img| {
            let w = img.team_world();
            let ca: Coarray<u64> = img.coarray_alloc(&w, 1);
            img.finish(&w, |img| {
                if img.this_image() == 0 {
                    let ca2 = ca.clone();
                    // The shipped closure enqueues an aggregated put back
                    // to image 0; its completion must cover the batch.
                    img.ship(&w, 1, move |exec| {
                        exec.copy_async_put(&ca2, 0, 0, &[777], AsyncOpts::none());
                    });
                }
            });
            if img.this_image() == 0 {
                assert_eq!(ca.local_vec(img)[0], 777);
            }
            img.coarray_free(&w, ca);
        });
    }

    #[test]
    fn oversized_puts_bypass_buckets() {
        CafUniverse::run_with_config(2, agg_cfg(SubstrateKind::Mpi), |img| {
            let w = img.team_world();
            let ca: Coarray<u64> = img.coarray_alloc(&w, 64);
            let big: Vec<u64> = (0..64).collect(); // 512 B > max_record_bytes
            if img.this_image() == 0 {
                img.copy_async_put(&ca, 1, 0, &big, AsyncOpts::none());
                assert_eq!(img.agg_pending_records(), 0, "bulk put must go direct");
            }
            img.finish_fast(&w, |_| {});
            if img.this_image() == 1 {
                assert_eq!(ca.local_vec(img), (0..64).collect::<Vec<u64>>());
            }
            img.coarray_free(&w, ca);
        });
    }
}
