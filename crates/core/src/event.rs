//! Events — CAF 2.0's pair-wise synchronization primitive (paper §2.1,
//! §3.4).
//!
//! Events are counting: each `event_notify` adds one post, each
//! `event_wait` consumes one. The runtime implements them over its AM
//! layer — the paper's chosen design ("CAF-MPI used the second method",
//! `MPI_ISEND` to notify and a blocking receive poll to wait, because
//! two-sided performance was better tuned than `MPI_FETCH_AND_OP` polling).
//!
//! The expensive part is the semantics of `event_notify`: the target may
//! only observe the notification after **all previous operations issued by
//! the notifying image are complete at their targets**. On CAF-MPI that
//! means a release barrier (`MPI_WAITALL` over pending requests) plus
//! `MPI_WIN_FLUSH_ALL` — which MPICH derivatives implement by flushing
//! every rank, Θ(P). The RandomAccess decomposition (Figure 4) is the
//! visible consequence, and this runtime reproduces it structurally.

use crate::backend::Backend;
use crate::image::Image;
use crate::rtmsg::RtMsg;
use crate::stats::StatCat;
use crate::team::Team;

/// How much remote completion `event_notify` enforces before posting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NotifyFlush {
    /// The paper's implementation: `MPI_Win_flush_all` on every touched
    /// window — correct, but Θ(P) per window in MPICH derivatives.
    All,
    /// The paper's §5/§7 improvement direction (what a per-target flush or
    /// `MPI_WIN_RFLUSH` would enable): complete only operations headed to
    /// the notification target. Sufficient when, as in RandomAccess, all
    /// operations the event guards target the notified image.
    TargetOnly,
}

/// A CAF event. Every image of the allocating team holds one instance;
/// `notify` posts a *specific image's* instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    pub(crate) id: u64,
}

impl Event {
    /// The collectively agreed event identity.
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Image {
    /// Collectively create an event over `team` (`event_init`). Every
    /// member must call this in the same order relative to other
    /// collective id-creating calls on the team.
    pub fn event_alloc(&self, team: &Team) -> Event {
        Event {
            id: self.next_team_token(team, 0xEE),
        }
    }

    /// Post `ev` at team member `target` (`event_notify`).
    ///
    /// Completes all previously issued operations first (release
    /// semantics); the notification itself is nonblocking (`MPI_ISEND`) to
    /// avoid deadlock in circular notify/wait chains (paper §3.4).
    pub fn event_notify(&self, team: &Team, ev: &Event, target: usize) {
        self.event_notify_with_flush(team, ev, target, NotifyFlush::All);
    }

    /// As [`Image::event_notify`], with an explicit flush policy — the
    /// ablation hook for the paper's `MPI_WIN_RFLUSH` discussion (§5).
    pub fn event_notify_with_flush(
        &self,
        team: &Team,
        ev: &Event,
        target: usize,
        flush: NotifyFlush,
    ) {
        self.fault_point("event_notify");
        self.stats().timed_d(
            StatCat::EventNotify,
            Some(team.global_rank(target)),
            0,
            None,
            Some(ev.id),
            || {
            // Release barrier: local completion of implicitly synchronized
            // asynchronous operations, then remote completion — flush_all
            // (Θ(P) per window on the MPI substrate), the configured
            // targeted/rflush policy, or the explicit per-target ablation.
            // Coalesced small puts leave their buckets first: each drained
            // bucket is one batched AM, so aggregation adds zero per-target
            // flush handshakes below — O(drained buckets) messages, never
            // O(records) flush work. FIFO order on the AM channel then
            // applies the batch before the notification itself.
            match flush {
                NotifyFlush::All => {
                    self.agg_drain_for_release();
                    self.release_all();
                }
                NotifyFlush::TargetOnly => {
                    self.agg_drain_target(team.global_rank(target));
                    self.complete_implicit_local();
                    self.backend_flush_target(team.global_rank(target));
                }
            }
            if team.global_rank(target) == self.this_image() {
                // Self-notification short-circuits the AM layer.
                self.post_event_local_hb(ev.id);
            } else {
                // The sanitizer records the notifier's clock at the send
                // (the receive edge is recorded by the consuming wait, not
                // by message delivery — posts pair FIFO with consumers).
                #[cfg(feature = "check")]
                caf_check::hooks::hb_send(
                    self.this_image(),
                    caf_check::hooks::NS_EVENT,
                    ev.id,
                    team.global_rank(target),
                );
                self.backend
                    .send_rtmsg(team.global_rank(target), &RtMsg::EventNotify { event_id: ev.id });
            }
        },
        );
    }

    /// Block until `ev` has been posted at this image, then consume one
    /// post (`event_wait`). The blocking poll drives runtime progress:
    /// shipped functions and other events arriving meanwhile are handled.
    pub fn event_wait(&self, ev: &Event) {
        self.stats().timed_d(StatCat::EventWait, None, 0, None, Some(ev.id), || loop {
            if self.take_post(ev.id) {
                #[cfg(feature = "check")]
                caf_check::hooks::hb_recv(
                    self.this_image(),
                    caf_check::hooks::NS_EVENT,
                    ev.id,
                );
                return;
            }
            let msg = self.backend.recv_rtmsg_blocking();
            self.handle_msg(msg);
        });
    }

    /// As [`Image::event_wait`], with a failure screen: returns
    /// [`crate::Stat::FailedImage`] instead of blocking forever once any
    /// image has failed. The watch set is the whole job — an event can be
    /// posted by any image, so any failure makes the wait unfulfillable
    /// in general; callers that know the poster survived can simply call
    /// again after reforming their team.
    pub fn event_wait_stat(&self, ev: &Event) -> crate::stat::Stat {
        self.stats().timed_d(StatCat::EventWait, None, 0, None, Some(ev.id), || loop {
            if self.take_post(ev.id) {
                #[cfg(feature = "check")]
                caf_check::hooks::hb_recv(
                    self.this_image(),
                    caf_check::hooks::NS_EVENT,
                    ev.id,
                );
                return crate::stat::Stat::Ok;
            }
            let watch: Vec<usize> = (0..self.num_images()).collect();
            match self.backend.recv_rtmsg_blocking_stat(&watch) {
                Ok(msg) => self.handle_msg(msg),
                Err(failed) => return self.stat_failed(failed),
            }
        })
    }

    /// Nonblocking test: consume one post if available (`event_trywait`).
    pub fn event_trywait(&self, ev: &Event) -> bool {
        self.stats().timed_d(StatCat::EventWait, None, 0, None, Some(ev.id), || {
            self.poll();
            let got = self.take_post(ev.id);
            #[cfg(feature = "check")]
            if got {
                caf_check::hooks::hb_recv(
                    self.this_image(),
                    caf_check::hooks::NS_EVENT,
                    ev.id,
                );
            }
            got
        })
    }

    /// Number of unconsumed posts currently visible at this image.
    pub fn event_pending(&self, ev: &Event) -> u64 {
        self.poll();
        *self.events.borrow().get(&ev.id).unwrap_or(&0)
    }

    fn take_post(&self, id: u64) -> bool {
        let mut events = self.events.borrow_mut();
        match events.get_mut(&id) {
            Some(c) if *c > 0 => {
                *c -= 1;
                true
            }
            _ => false,
        }
    }

    pub(crate) fn backend_flush_all(&self) {
        self.backend.flush_all();
    }

    /// The release barrier of `event_notify`/`finish`: local completion of
    /// implicitly synchronized asynchronous operations, then remote
    /// completion of everything outstanding under the configured
    /// [`crate::backend::FlushMode`].
    ///
    /// In `Rflush` mode the per-target flushes are *issued first* so that
    /// their modeled latency overlaps the local release work (the paper's
    /// §5 `MPI_WIN_RFLUSH` overlap), and waited after it.
    pub(crate) fn release_all(&self) {
        if let Backend::Mpi(b) = &self.backend {
            if matches!(b.flush, crate::backend::FlushMode::Rflush { .. }) {
                let reqs = b.rflush_issue_all();
                self.complete_implicit_local();
                for r in reqs {
                    r.wait();
                }
                return;
            }
        }
        self.complete_implicit_local();
        self.backend.flush_all();
    }

    /// Complete outstanding one-sided operations to one global rank only.
    pub(crate) fn backend_flush_target(&self, global: usize) {
        match &self.backend {
            Backend::Mpi(b) => {
                for win in b.windows.borrow().values() {
                    if let Some(rank) = win.comm().comm_rank_of_global(global) {
                        b.mpi.win_flush(win, rank).expect("flush");
                    }
                }
            }
            Backend::Gasnet(b) => b.g.wait_syncnbi_puts(),
        }
    }

    /// Local completion of implicitly synchronized async operations (the
    /// release-barrier `MPI_WAITALL` of paper §3.4). On this substrate the
    /// requests are already complete; the counters are consumed so
    /// `cofence` semantics stay observable.
    pub(crate) fn complete_implicit_local(&self) {
        self.implicit_puts.set(0);
        self.implicit_gets.set(0);
    }
}

#[cfg(test)]
mod tests {
    use crate::image::{CafConfig, CafUniverse, SubstrateKind};

    fn both(n: usize, f: impl Fn(&crate::image::Image) + Send + Sync) {
        for kind in [SubstrateKind::Mpi, SubstrateKind::Gasnet] {
            CafUniverse::run_with_config(n, CafConfig::on(kind), |img| f(img));
        }
    }

    #[test]
    fn notify_then_wait() {
        both(2, |img| {
            let w = img.team_world();
            let ev = img.event_alloc(&w);
            if img.this_image() == 0 {
                img.event_notify(&w, &ev, 1);
            } else {
                img.event_wait(&ev);
            }
            img.sync_all();
        });
    }

    #[test]
    fn posts_are_counted() {
        both(2, |img| {
            let w = img.team_world();
            let ev = img.event_alloc(&w);
            if img.this_image() == 0 {
                for _ in 0..3 {
                    img.event_notify(&w, &ev, 1);
                }
                img.sync_all();
            } else {
                img.sync_all();
                // All three posts must be waitable.
                img.event_wait(&ev);
                img.event_wait(&ev);
                img.event_wait(&ev);
                assert!(!img.event_trywait(&ev));
            }
        });
    }

    #[test]
    fn trywait_is_nonblocking() {
        both(2, |img| {
            let w = img.team_world();
            let ev = img.event_alloc(&w);
            if img.this_image() == 1 {
                assert!(!img.event_trywait(&ev));
            }
            img.sync_all();
            if img.this_image() == 0 {
                img.event_notify(&w, &ev, 1);
            }
            img.sync_all();
            if img.this_image() == 1 {
                assert!(img.event_trywait(&ev));
            }
        });
    }

    #[test]
    fn notify_makes_prior_writes_visible() {
        // The release semantics: a coarray write issued before
        // event_notify must be visible to the waiter when it wakes.
        both(2, |img| {
            let w = img.team_world();
            let ca: crate::coarray::Coarray<u64> = img.coarray_alloc(&w, 1);
            let ev = img.event_alloc(&w);
            if img.this_image() == 0 {
                ca.write(img, 1, 0, &[7777]);
                img.event_notify(&w, &ev, 1);
            } else {
                img.event_wait(&ev);
                assert_eq!(ca.local_vec(img)[0], 7777);
            }
            img.coarray_free(&w, ca);
        });
    }

    #[test]
    fn target_only_flush_still_releases_writes_to_target() {
        // The §5 per-target flush is sufficient when the guarded writes go
        // to the notified image — the RandomAccess pattern.
        both(3, |img| {
            let w = img.team_world();
            let ca: crate::coarray::Coarray<u64> = img.coarray_alloc(&w, 1);
            let ev = img.event_alloc(&w);
            if img.this_image() == 0 {
                img.copy_async_put(&ca, 1, 0, &[4242], crate::asyncops::AsyncOpts::none());
                img.event_notify_with_flush(&w, &ev, 1, super::NotifyFlush::TargetOnly);
            } else if img.this_image() == 1 {
                img.event_wait(&ev);
                assert_eq!(ca.local_vec(img)[0], 4242);
            }
            img.sync_all();
            img.coarray_free(&w, ca);
        });
    }

    #[test]
    fn targeted_and_rflush_modes_release_writes_on_notify() {
        // The §5 fixes must preserve release semantics: an async put issued
        // before event_notify is visible to the waiter under every flush
        // mode, on both substrates (GASNet ignores the MPI-only knob).
        use crate::backend::FlushMode;
        for kind in [SubstrateKind::Mpi, SubstrateKind::Gasnet] {
            for flush in [FlushMode::targeted(), FlushMode::rflush()] {
                let cfg = CafConfig {
                    flush,
                    ..CafConfig::on(kind)
                };
                CafUniverse::run_with_config(3, cfg, |img| {
                    let w = img.team_world();
                    let ca: crate::coarray::Coarray<u64> = img.coarray_alloc(&w, 1);
                    let ev = img.event_alloc(&w);
                    if img.this_image() == 0 {
                        img.copy_async_put(
                            &ca,
                            2,
                            0,
                            &[9001],
                            crate::asyncops::AsyncOpts::none(),
                        );
                        img.event_notify(&w, &ev, 2);
                    } else if img.this_image() == 2 {
                        img.event_wait(&ev);
                        assert_eq!(ca.local_vec(img)[0], 9001);
                    }
                    img.sync_all();
                    img.coarray_free(&w, ca);
                });
            }
        }
    }

    #[test]
    fn targeted_mode_falls_back_when_most_ranks_dirty() {
        // With every rank dirty the 50% threshold forces the flush_all
        // fallback; correctness must be identical.
        use crate::backend::FlushMode;
        let cfg = CafConfig {
            flush: FlushMode::targeted(),
            ..CafConfig::on(SubstrateKind::Mpi)
        };
        CafUniverse::run_with_config(4, cfg, |img| {
            let w = img.team_world();
            let ca: crate::coarray::Coarray<u64> = img.coarray_alloc(&w, 4);
            let ev = img.event_alloc(&w);
            if img.this_image() == 0 {
                for peer in 1..4 {
                    img.copy_async_put(
                        &ca,
                        peer,
                        0,
                        &[peer as u64],
                        crate::asyncops::AsyncOpts::none(),
                    );
                }
                for peer in 1..4 {
                    img.event_notify(&w, &ev, peer);
                }
            } else {
                img.event_wait(&ev);
                assert_eq!(ca.local_vec(img)[0], img.this_image() as u64);
            }
            img.sync_all();
            img.coarray_free(&w, ca);
        });
    }

    #[test]
    fn targeted_flush_maps_team_relative_ranks_to_world() {
        // Dirty targets are comm-relative; notify on a sub-team must still
        // flush the right world rank. Team {1,3} of a 4-image world: team
        // rank 1 is world rank 3.
        use crate::backend::FlushMode;
        for flush in [FlushMode::targeted(), FlushMode::rflush()] {
            let cfg = CafConfig {
                flush,
                ..CafConfig::on(SubstrateKind::Mpi)
            };
            CafUniverse::run_with_config(4, cfg, |img| {
                let w = img.team_world();
                let me = img.this_image();
                let odd = img.team_split(&w, (me % 2) as u64, (me / 2) as i64);
                let ca: crate::coarray::Coarray<u64> = img.coarray_alloc(&odd, 1);
                let ev = img.event_alloc(&odd);
                if me % 2 == 1 {
                    if odd.rank() == 0 {
                        // World image 1 writes team-rank 1 (= world 3).
                        img.copy_async_put(
                            &ca,
                            1,
                            0,
                            &[777],
                            crate::asyncops::AsyncOpts::none(),
                        );
                        img.event_notify(&odd, &ev, 1);
                    } else {
                        img.event_wait(&ev);
                        assert_eq!(ca.local_vec(img)[0], 777);
                    }
                }
                img.sync_all();
                img.coarray_free(&odd, ca);
            });
        }
    }

    #[test]
    fn finish_completes_puts_under_all_flush_modes() {
        use crate::backend::FlushMode;
        for flush in [FlushMode::All, FlushMode::targeted(), FlushMode::rflush()] {
            let cfg = CafConfig {
                flush,
                ..CafConfig::on(SubstrateKind::Mpi)
            };
            CafUniverse::run_with_config(4, cfg, |img| {
                let w = img.team_world();
                let ca: crate::coarray::Coarray<u64> = img.coarray_alloc(&w, 1);
                img.finish(&w, |img| {
                    let peer = (img.this_image() + 1) % 4;
                    img.copy_async_put(
                        &ca,
                        peer,
                        0,
                        &[img.this_image() as u64 + 10],
                        crate::asyncops::AsyncOpts::none(),
                    );
                });
                let writer = (img.this_image() + 3) % 4;
                assert_eq!(ca.local_vec(img)[0], writer as u64 + 10);
                img.coarray_free(&w, ca);
            });
        }
    }

    #[test]
    fn self_notify_works() {
        both(1, |img| {
            let w = img.team_world();
            let ev = img.event_alloc(&w);
            img.event_notify(&w, &ev, 0);
            img.event_wait(&ev);
        });
    }

    #[test]
    fn distinct_events_do_not_interfere() {
        both(2, |img| {
            let w = img.team_world();
            let a = img.event_alloc(&w);
            let b = img.event_alloc(&w);
            assert_ne!(a.id(), b.id());
            if img.this_image() == 0 {
                img.event_notify(&w, &b, 1);
                img.sync_all();
            } else {
                img.sync_all();
                assert!(!img.event_trywait(&a));
                assert!(img.event_trywait(&b));
            }
        });
    }

    #[test]
    fn ping_pong_chain() {
        both(2, |img| {
            let w = img.team_world();
            let ping = img.event_alloc(&w);
            let pong = img.event_alloc(&w);
            for _ in 0..10 {
                if img.this_image() == 0 {
                    img.event_notify(&w, &ping, 1);
                    img.event_wait(&pong);
                } else {
                    img.event_wait(&ping);
                    img.event_notify(&w, &pong, 0);
                }
            }
        });
    }
}
