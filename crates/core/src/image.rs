//! Images, the job launcher, and the runtime progress engine.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::sync::Arc;

use crossbeam::queue::SegQueue;

use caf_fabric::{Fabric, FabricConfig};
use caf_gasnetsim::{Gasnet, GasnetConfig};
use caf_mpisim::{Mpi, MpiConfig};

use crate::arena::SegmentArena;
use crate::backend::{Backend, FlushMode, GasnetBackend, MpiBackend, RT_HANDLER};
use crate::rtmsg::RtMsg;
use crate::ship::ShipRegistry;
use crate::stats::Stats;
use crate::team::{GTeam, GTeamState, Team, TeamInner};

/// Which communication substrate the CAF runtime runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubstrateKind {
    /// CAF-MPI — the paper's contribution: MPI-3 is the runtime.
    Mpi,
    /// CAF-GASNet — the original CAF 2.0 runtime, the paper's baseline.
    Gasnet,
}

/// Configuration of one CAF job.
#[derive(Debug, Clone, Copy)]
pub struct CafConfig {
    /// Substrate selection.
    pub substrate: SubstrateKind,
    /// MPI library configuration (used by the MPI substrate, and by the
    /// co-resident MPI library under `hybrid_mpi`).
    pub mpi: MpiConfig,
    /// GASNet library configuration.
    pub gasnet: GasnetConfig,
    /// On the GASNet substrate, also initialize a full MPI library on every
    /// image — the paper's *duplicate runtimes* situation, required for
    /// hybrid MPI+CAF applications (CGPOP) on CAF-GASNet and measured by
    /// Figure 1. On the MPI substrate this flag is meaningless: the single
    /// MPI library already serves both roles (that is the point of the
    /// paper).
    pub hybrid_mpi: bool,
    /// Release-point completion policy for the CAF-MPI backend (ignored on
    /// GASNet, whose sync of non-blocking puts is already a local
    /// operation). Defaults to the paper-faithful [`FlushMode::All`]; the
    /// §5 fixes are [`FlushMode::targeted`] and [`FlushMode::rflush`].
    pub flush: FlushMode,
    /// Small-put coalescing knobs (opt-in; default disabled so the
    /// paper-faithful direct path is what runs). See `crates/agg` and
    /// DESIGN.md §13. The runtime clamps the knobs at init — see
    /// [`Image::agg_config`] for the effective values.
    pub agg: caf_agg::AggConfig,
    /// How images execute: one OS thread each ([`caf_sched::ExecMode::Threads`],
    /// the paper-faithful default) or as stackful tasks on the caf-sched
    /// work-stealing pool ([`caf_sched::ExecMode::Tasks`]), which executes
    /// P=1024 jobs for real. See DESIGN.md §15.
    pub exec: caf_sched::ExecConfig,
    /// Deterministic fault-injection schedule (DESIGN.md §17). Default:
    /// nothing dies. Jobs that inject kills should launch through
    /// [`CafUniverse::run_with_config_ft`] so a killed image becomes a
    /// `None` result instead of a job panic.
    pub fault: caf_fabric::FaultPlan,
}

impl Default for CafConfig {
    fn default() -> Self {
        CafConfig {
            substrate: SubstrateKind::Mpi,
            mpi: MpiConfig::default(),
            gasnet: GasnetConfig::default(),
            hybrid_mpi: false,
            flush: FlushMode::All,
            agg: caf_agg::AggConfig::default(),
            exec: caf_sched::ExecConfig::default(),
            fault: caf_fabric::FaultPlan::none(),
        }
    }
}

impl CafConfig {
    /// Default configuration on the given substrate.
    pub fn on(substrate: SubstrateKind) -> Self {
        CafConfig {
            substrate,
            ..CafConfig::default()
        }
    }
}

/// A runtime operation parked on a predicate event: `(event_id, op)`.
pub(crate) type DeferredOp = (u64, Box<dyn FnOnce(&Image)>);

/// Launcher for CAF jobs.
pub struct CafUniverse;

impl CafUniverse {
    /// Run `f` on `n` images over the MPI substrate (the default).
    pub fn run<T, F>(n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&Image) -> T + Send + Sync,
    {
        Self::run_with_config(n, CafConfig::default(), f)
    }

    /// As [`CafUniverse::run_with_config`], additionally capturing every
    /// image's time-decomposition ledger — the measurement path behind
    /// the paper's Figure 4 / Figure 8 profiles.
    pub fn run_collect_stats<T, F>(
        n: usize,
        config: CafConfig,
        f: F,
    ) -> Vec<(T, crate::stats::StatsReport)>
    where
        T: Send,
        F: Fn(&Image) -> T + Send + Sync,
    {
        Self::run_with_config(n, config, |img| {
            let r = f(img);
            (r, crate::stats::StatsReport::capture(img.stats()))
        })
    }

    /// Run `f` on `n` images with an explicit configuration; returns
    /// per-image results in image order.
    pub fn run_with_config<T, F>(n: usize, config: CafConfig, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&Image) -> T + Send + Sync,
    {
        Self::launch(n, config, f)
            .into_iter()
            .map(|r| r.expect("image panicked"))
            .collect()
    }

    /// Fault-tolerant launcher: as [`CafUniverse::run_with_config`], but a
    /// rank killed by the configured [`CafConfig::fault`] plan (or by its
    /// own [`Image::fail_image`]) yields `None` instead of panicking the
    /// job. Any *other* panic still propagates — only injected deaths are
    /// forgiven.
    pub fn run_with_config_ft<T, F>(n: usize, config: CafConfig, f: F) -> Vec<Option<T>>
    where
        T: Send,
        F: Fn(&Image) -> T + Send + Sync,
    {
        Self::launch(n, config, f)
            .into_iter()
            .map(|r| match r {
                Ok(v) => Some(v),
                Err(e) if e.downcast_ref::<caf_fabric::ImageKilled>().is_some() => None,
                Err(e) => std::panic::resume_unwind(e),
            })
            .collect()
    }

    fn launch<T, F>(n: usize, config: CafConfig, f: F) -> Vec<std::thread::Result<T>>
    where
        T: Send,
        F: Fn(&Image) -> T + Send + Sync,
    {
        let mut fabric = Fabric::with_config(
            n,
            FabricConfig {
                planes: 2,
                exec: config.exec,
                fault: config.fault,
                ..FabricConfig::default()
            },
        );
        let ship_reg = Arc::new(ShipRegistry::new());
        // Per-rank endpoint pairs travel to their image through take-once
        // slots: the executor invokes `Fn(rank)` and caf-sched guarantees
        // task id == rank (under `Threads` this degenerates to the old
        // one-scoped-thread-per-image launch).
        let slots: Vec<std::sync::Mutex<Option<_>>> = (0..n)
            .map(|rank| {
                std::sync::Mutex::new(Some((
                    fabric.take_endpoint_on(rank, 0),
                    fabric.take_endpoint_on(rank, 1),
                )))
            })
            .collect();
        let f = &f;
        let ship_reg = &ship_reg;
        caf_sched::run(n, &config.exec, move |rank| {
            let (ep0, ep1) = slots[rank]
                .lock()
                .unwrap()
                .take()
                .expect("endpoint slot taken twice");
            let _model = caf_fabric::sched::register_thread(rank);
            let img = Image::init(ep0, ep1, config, Arc::clone(ship_reg));
            f(&img)
        })
    }
}

/// One CAF process image: the runtime handle every CAF operation goes
/// through. One per thread; not `Sync`.
pub struct Image {
    pub(crate) backend: Backend,
    pub(crate) ship_reg: Arc<ShipRegistry>,
    /// Posted-event counts, keyed by event id.
    pub(crate) events: RefCell<HashMap<u64, u64>>,
    /// Copies deferred on a predicate event: `(event_id, op)`.
    pub(crate) deferred: RefCell<Vec<DeferredOp>>,
    /// Innermost-first stack of active finish block ids.
    pub(crate) finish_stack: RefCell<Vec<u64>>,
    /// Per-finish (shipped, completed) counters.
    pub(crate) finish_counters: RefCell<HashMap<u64, (u64, u64)>>,
    /// Hand-rolled collective fragments awaiting their consumer (GASNet).
    pub(crate) coll_stash: RefCell<Vec<RtMsg>>,
    /// Per-team token counter for collectively derived ids (events, finish
    /// blocks, GASNet regions). Consistent across members because all
    /// derivations happen in collective calls.
    pub(crate) team_tokens: RefCell<HashMap<u64, u64>>,
    /// Implicitly synchronized operation counts (consumed by `cofence`).
    pub(crate) implicit_puts: Cell<u64>,
    pub(crate) implicit_gets: Cell<u64>,
    /// Small-put aggregation buckets (`crates/agg`), under the clamped
    /// effective configuration.
    pub(crate) agg: RefCell<caf_agg::Aggregator>,
    /// Per-image counter feeding globally unique batch tokens.
    pub(crate) agg_token_ctr: Cell<u64>,
    world: Team,
    stats: Stats,
}

impl Image {
    fn init(
        ep0: caf_fabric::Endpoint,
        ep1: caf_fabric::Endpoint,
        config: CafConfig,
        ship_reg: Arc<ShipRegistry>,
    ) -> Self {
        let n = ep0.size();
        // Attribute this thread's trace collector to the image before any
        // instrumented call can record an event.
        caf_trace::set_image(ep0.rank());
        let (backend, world) = match config.substrate {
            SubstrateKind::Mpi => {
                let mpi = Mpi::init(ep0, config.mpi);
                drop(ep1); // single library, single plane
                let world_comm = mpi.world();
                // Communication-free dup: image bring-up must not block
                // on peers a fault plan may kill before they ever reach
                // the runtime (the collective `comm_dup` barriers).
                let rt_comm = mpi.comm_dup_local(&world_comm);
                (
                    Backend::Mpi(Box::new(MpiBackend {
                        mpi,
                        rt_comm,
                        windows: RefCell::new(HashMap::new()),
                        flush: config.flush,
                    })),
                    Team {
                        inner: TeamInner::Mpi(world_comm),
                    },
                )
            }
            SubstrateKind::Gasnet => {
                let g = Gasnet::init(ep0, config.gasnet);
                let inbox: Arc<SegQueue<(usize, Vec<u8>)>> = Arc::new(SegQueue::new());
                let sink = Arc::clone(&inbox);
                g.register_handler(RT_HANDLER, move |_g: &Gasnet, tok, _args, data| {
                    sink.push((tok.src, data.to_vec()));
                });
                let hybrid_mpi = if config.hybrid_mpi {
                    Some(Mpi::init(ep1, config.mpi))
                } else {
                    drop(ep1);
                    None
                };
                let rank = g.rank();
                let arena = SegmentArena::new(config.gasnet.segment_size);
                (
                    Backend::Gasnet(Box::new(GasnetBackend {
                        g,
                        arena,
                        inbox,
                        regions: RefCell::new(HashMap::new()),
                        hybrid_mpi,
                    })),
                    Team {
                        inner: TeamInner::Gasnet(GTeam {
                            id: 0,
                            members: (0..n).collect::<Vec<_>>().into(),
                            my_idx: rank,
                            state: Arc::new(GTeamState::default()),
                        }),
                    },
                )
            }
        };
        let rank = backend.rank();
        let agg_cfg = crate::agg::effective_agg_config(config.agg, config.substrate, n);
        Image {
            backend,
            ship_reg,
            events: RefCell::new(HashMap::new()),
            deferred: RefCell::new(Vec::new()),
            finish_stack: RefCell::new(Vec::new()),
            finish_counters: RefCell::new(HashMap::new()),
            coll_stash: RefCell::new(Vec::new()),
            team_tokens: RefCell::new(HashMap::new()),
            implicit_puts: Cell::new(0),
            implicit_gets: Cell::new(0),
            agg: RefCell::new(caf_agg::Aggregator::new(agg_cfg, rank, n)),
            agg_token_ctr: Cell::new(0),
            world,
            stats: Stats::new(),
        }
    }

    /// This image's index (0-based; Fortran's `this_image()` is 1-based).
    pub fn this_image(&self) -> usize {
        self.backend.rank()
    }

    /// Total number of images (`num_images()`).
    pub fn num_images(&self) -> usize {
        self.backend.size()
    }

    /// `TEAM_WORLD`.
    pub fn team_world(&self) -> Team {
        self.world.clone()
    }

    /// The per-image time-decomposition ledger.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Which substrate this job runs on.
    pub fn substrate(&self) -> SubstrateKind {
        match &self.backend {
            Backend::Mpi(_) => SubstrateKind::Mpi,
            Backend::Gasnet(_) => SubstrateKind::Gasnet,
        }
    }

    /// Direct access to the MPI library, for hybrid MPI+CAF applications.
    ///
    /// On the MPI substrate this is the *same* library instance the CAF
    /// runtime uses — the interoperability the paper is about. On the
    /// GASNet substrate it is the co-resident duplicate library, present
    /// only when [`CafConfig::hybrid_mpi`] was set.
    pub fn mpi(&self) -> Option<&Mpi> {
        match &self.backend {
            Backend::Mpi(b) => Some(&b.mpi),
            Backend::Gasnet(b) => b.hybrid_mpi.as_ref(),
        }
    }

    /// Bytes of runtime (non-user-data) memory mapped by the communication
    /// libraries on this image — the Figure-1 quantity.
    pub fn runtime_memory_overhead(&self) -> usize {
        self.backend.memory_overhead()
    }

    /// Snapshot of this image's substrate delay meter: per
    /// [`caf_fabric::DelayOp`] `(op, count, modeled_ns)` since job start.
    /// Counts and modeled nanoseconds are deterministic functions of the
    /// communication schedule (never wall-clock), which makes deltas of
    /// this snapshot the basis for CI-gateable benchmark numbers.
    pub fn delay_meter_snapshot(&self) -> Vec<(caf_fabric::DelayOp, u64, u64)> {
        match &self.backend {
            Backend::Mpi(b) => b.mpi.delay_meter().snapshot(),
            Backend::Gasnet(b) => b.g.delay_meter().snapshot(),
        }
    }

    /// Drive runtime progress: handle every runtime message that has
    /// already arrived. Called internally by blocking operations; exposed
    /// so long compute loops can keep shipped functions and events flowing.
    pub fn poll(&self) {
        while let Some(msg) = self.backend.try_recv_rtmsg() {
            self.handle_msg(msg);
        }
    }

    /// Handle one runtime message.
    pub(crate) fn handle_msg(&self, msg: RtMsg) {
        match msg {
            RtMsg::EventNotify { event_id } => self.post_event_local(event_id),
            RtMsg::Ship { slot, finish_id } => {
                let f = self.ship_reg.claim(slot);
                // Join the shipper's clock before the closure runs: the
                // ship-registry slot is globally unique, so it doubles as
                // the happens-before channel token.
                #[cfg(feature = "check")]
                caf_check::hooks::hb_recv(self.this_image(), caf_check::hooks::NS_SHIP, slot);
                // Functions shipped *by* this function belong to the same
                // finish block (Yang's accounting), so propagate its id as
                // the innermost scope for the duration of the execution.
                self.finish_stack.borrow_mut().push(finish_id);
                f(self);
                self.finish_stack.borrow_mut().pop();
                // The shipped function's one-sided effects must be globally
                // visible before it counts as completed — including any
                // puts it parked in aggregation buckets, whose batches are
                // accounted to the same finish id.
                self.agg_drain_all(finish_id);
                self.backend.flush_all();
                let mut counters = self.finish_counters.borrow_mut();
                counters.entry(finish_id).or_insert((0, 0)).1 += 1;
            }
            RtMsg::PutWithEvent {
                region_id,
                offset,
                event_id,
                data,
            } => {
                self.region_write_local(region_id, offset as usize, &data);
                if event_id != 0 {
                    self.post_event_local(event_id);
                }
            }
            RtMsg::AggBatch {
                token,
                finish_id,
                data,
            } => self.handle_agg_batch(token, finish_id, &data),
            RtMsg::CollPayload { .. } => {
                self.coll_stash.borrow_mut().push(msg);
            }
        }
    }

    /// Write into this image's part of a region (PutWithEvent target path).
    pub(crate) fn region_write_local(&self, region_id: u64, offset: usize, data: &[u8]) {
        match &self.backend {
            Backend::Mpi(b) => {
                let windows = b.windows.borrow();
                let win = windows
                    .get(&region_id)
                    .unwrap_or_else(|| panic!("PutWithEvent for unknown window {region_id}"));
                b.mpi
                    .win_write_local(win, offset, data)
                    .expect("PutWithEvent local write");
            }
            Backend::Gasnet(b) => {
                let regions = b.regions.borrow();
                let base = regions
                    .get(&region_id)
                    .unwrap_or_else(|| panic!("PutWithEvent for unknown region {region_id}"));
                b.g.write_local(base + offset, data)
                    .expect("PutWithEvent local write");
            }
        }
    }

    /// Read-modify-write one u64 in this image's part of a region (the
    /// accumulate-record target path of batched aggregation delivery).
    /// Applied serially by the owning image's progress engine, so
    /// concurrent updates from any number of origins are atomic.
    pub(crate) fn region_rmw_u64(&self, region_id: u64, offset: usize, f: impl FnOnce(u64) -> u64) {
        match &self.backend {
            Backend::Mpi(b) => {
                let windows = b.windows.borrow();
                let win = windows
                    .get(&region_id)
                    .unwrap_or_else(|| panic!("accumulate record for unknown window {region_id}"));
                let mut v = [0u64];
                b.mpi
                    .win_read_local(win, offset, &mut v)
                    .expect("accumulate local read");
                b.mpi
                    .win_write_local(win, offset, &[f(v[0])])
                    .expect("accumulate local write");
            }
            Backend::Gasnet(b) => {
                let regions = b.regions.borrow();
                let base = regions
                    .get(&region_id)
                    .unwrap_or_else(|| panic!("accumulate record for unknown region {region_id}"));
                let mut v = [0u64];
                b.g.read_local(base + offset, &mut v)
                    .expect("accumulate local read");
                b.g.write_local(base + offset, &[f(v[0])])
                    .expect("accumulate local write");
            }
        }
    }

    /// Post `event_id` once on this image, releasing any deferred copies
    /// predicated on it.
    pub(crate) fn post_event_local(&self, event_id: u64) {
        *self.events.borrow_mut().entry(event_id).or_insert(0) += 1;
        // Release deferred operations whose predicate just fired.
        let ready: Vec<_> = {
            let mut deferred = self.deferred.borrow_mut();
            let mut ready = Vec::new();
            let mut i = 0;
            while i < deferred.len() {
                if deferred[i].0 == event_id {
                    ready.push(deferred.swap_remove(i).1);
                } else {
                    i += 1;
                }
            }
            ready
        };
        for op in ready {
            op(self);
        }
    }

    /// As [`Image::post_event_local`], also recording the happens-before
    /// send edge the sanitizer pairs with the consuming wait. Use this
    /// wherever the *poster's* causal past must be visible to the waiter
    /// (never on the AM-delivery path, which posts on behalf of a sender
    /// that already recorded its edge).
    pub(crate) fn post_event_local_hb(&self, event_id: u64) {
        #[cfg(feature = "check")]
        caf_check::hooks::hb_send(
            self.this_image(),
            caf_check::hooks::NS_EVENT,
            event_id,
            self.this_image(),
        );
        self.post_event_local(event_id);
    }

    // ----- failed-image semantics (Fortran 2018, DESIGN.md §17) --------

    /// Fail this image here (`fail image`). The image stops executing
    /// immediately; under [`CafConfig::fault`]`.detect` (the default)
    /// survivors observe the death at their next blocking point. Use
    /// [`CafUniverse::run_with_config_ft`] to turn the death into a `None`
    /// result instead of a job panic.
    pub fn fail_image(&self) -> ! {
        match &self.backend {
            Backend::Mpi(b) => b.mpi.fail_now(),
            Backend::Gasnet(b) => b.g.fail_now(),
        }
    }

    /// Failure status of image `i` (`image_status(i)`), as observed
    /// through the substrate's failure registry.
    pub fn image_status(&self, i: usize) -> crate::stat::ImageStatus {
        if self.backend.fault().is_failed(i) {
            crate::stat::ImageStatus::Failed
        } else {
            crate::stat::ImageStatus::Ok
        }
    }

    /// Every image observed to have failed so far (global ranks,
    /// ascending) — Fortran's `failed_images()`.
    pub fn failed_images(&self) -> Vec<usize> {
        self.backend.fault().failed_set()
    }

    /// A named fault-injection site: if the configured plan kills this
    /// image at this occurrence of `name`, die here (see
    /// [`caf_fabric::KillSite::Op`]).
    pub(crate) fn fault_point(&self, name: &str) {
        let fault = self.backend.fault();
        if fault.plan().is_empty() {
            return;
        }
        if fault.op_hit(name) {
            self.fail_image();
        }
    }

    /// Deliver a failed-image status: record the trace instant and inform
    /// the race detector that edges to the failed images terminate.
    pub(crate) fn stat_failed(&self, failed: Vec<usize>) -> crate::stat::Stat {
        debug_assert!(!failed.is_empty(), "stat_failed needs a failed set");
        if caf_trace::enabled() {
            caf_trace::instant(caf_trace::Op::StatDelivered, None, failed.len() as u64, None);
        }
        #[cfg(feature = "check")]
        for &r in &failed {
            caf_check::hooks::image_failed(self.this_image(), r);
        }
        crate::stat::Stat::FailedImage(failed)
    }

    /// Collectively derive a fresh token on `team` (used for event, finish,
    /// and GASNet-region ids). Every member must call this in the same
    /// collective context.
    pub(crate) fn next_team_token(&self, team: &Team, salt: u64) -> u64 {
        let mut tokens = self.team_tokens.borrow_mut();
        let ctr = tokens.entry(team.id()).or_insert(0);
        *ctr += 1;
        derive_token(team.id(), *ctr, salt)
    }
}

/// Extract the failed-image set from a substrate error. Any error other
/// than a detected failure is a runtime bug and panics.
pub(crate) fn failed_of_err(e: caf_fabric::FabricError) -> Vec<usize> {
    match e {
        caf_fabric::FabricError::ImageFailed { failed } => failed,
        e => panic!("substrate error: {e}"),
    }
}

/// SplitMix64-based token derivation (same mixer as the MPI substrate's
/// context ids).
pub(crate) fn derive_token(team_id: u64, counter: u64, salt: u64) -> u64 {
    let mut x = team_id ^ counter.wrapping_mul(0x9e3779b97f4a7c15) ^ salt.rotate_left(32);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    (x ^ (x >> 31)) | 1 // never 0 (0 is the "no event" sentinel)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn images_launch_on_both_substrates() {
        for kind in [SubstrateKind::Mpi, SubstrateKind::Gasnet] {
            let res = CafUniverse::run_with_config(4, CafConfig::on(kind), |img| {
                assert_eq!(img.substrate(), kind);
                assert_eq!(img.team_world().size(), 4);
                (img.this_image(), img.num_images())
            });
            assert_eq!(res, vec![(0, 4), (1, 4), (2, 4), (3, 4)]);
        }
    }

    #[test]
    fn mpi_substrate_exposes_mpi_handle() {
        CafUniverse::run(2, |img| {
            assert!(img.mpi().is_some());
        });
    }

    #[test]
    fn gasnet_substrate_without_hybrid_has_no_mpi() {
        CafUniverse::run_with_config(2, CafConfig::on(SubstrateKind::Gasnet), |img| {
            assert!(img.mpi().is_none());
        });
    }

    #[test]
    fn hybrid_gasnet_has_duplicate_runtimes() {
        let cfg = CafConfig {
            hybrid_mpi: true,
            ..CafConfig::on(SubstrateKind::Gasnet)
        };
        let overheads = CafUniverse::run_with_config(2, cfg, |img| {
            assert!(img.mpi().is_some());
            img.runtime_memory_overhead()
        });
        // Duplicate runtimes must cost more than GASNet alone (Figure 1).
        let gasnet_only = CafUniverse::run_with_config(
            2,
            CafConfig::on(SubstrateKind::Gasnet),
            |img| img.runtime_memory_overhead(),
        );
        assert!(overheads[0] > gasnet_only[0]);
    }

    #[test]
    fn derived_tokens_never_zero_and_distinct() {
        let mut seen = std::collections::HashSet::new();
        for team in 0..10u64 {
            for ctr in 1..10u64 {
                for salt in [0xEE, 0xF1, 0xCA] {
                    let t = derive_token(team, ctr, salt);
                    assert_ne!(t, 0);
                    assert!(seen.insert(t), "token collision");
                }
            }
        }
    }

    #[test]
    fn run_collect_stats_captures_ledgers() {
        let rows = CafUniverse::run_collect_stats(2, CafConfig::default(), |img| {
            img.sync_all();
            img.this_image()
        });
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1].0, 1);
        // The barrier must appear in the captured report.
        let report = &rows[0].1;
        let barrier_calls = report
            .rows
            .iter()
            .find(|(c, _, _)| *c == crate::stats::StatCat::Barrier)
            .map(|&(_, _, k)| k)
            .unwrap();
        assert!(barrier_calls >= 1);
    }

    #[test]
    fn post_event_accumulates() {
        CafUniverse::run(1, |img| {
            img.post_event_local(99);
            img.post_event_local(99);
            assert_eq!(img.events.borrow()[&99], 2);
        });
    }
}
