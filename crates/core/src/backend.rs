//! The substrate abstraction: one CAF runtime, two communication layers.
//!
//! `Backend::Mpi` is the paper's contribution (CAF-MPI, §3); `Backend::Gasnet`
//! is the baseline the paper compares against (CAF-GASNet, the original
//! CAF 2.0 runtime). The runtime above this module is substrate-agnostic;
//! everything substrate-specific — remote references, AM transport, flush
//! semantics, collectives availability — lives here.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;

use crossbeam::queue::SegQueue;

use caf_gasnetsim::{Gasnet, AM_MAX_MEDIUM};
use caf_mpisim::{Comm, FlushRequest, Mpi, Src, Tag, Window};

use crate::arena::SegmentArena;
use crate::rtmsg::RtMsg;

/// How the CAF-MPI backend completes outstanding puts at a release point
/// (`event_notify`, `cofence`, `finish`, `copy_async` completion).
///
/// The paper's §4.1 analysis shows `MPI_Win_flush_all` costs Θ(P) in every
/// MPICH derivative, which makes `event_notify` scale with job size; its §5
/// fix is to complete only what is actually outstanding. The runtime keeps
/// [`FlushMode::All`] as the default so the paper's measured behaviour is
/// what benchmarks reproduce out of the box; the fixed modes are opt-in via
/// `CafConfig::flush`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum FlushMode {
    /// Paper-faithful baseline: `MPI_Win_flush_all` on every window the
    /// image has touched — Θ(P) per window regardless of what is dirty.
    #[default]
    All,
    /// Targeted flush (§5): `MPI_Win_flush` per dirty `(window, rank)`
    /// pair. Falls back to `flush_all` on a window when more than
    /// `fallback_fraction` of its ranks are dirty (at that point the Θ(P)
    /// scan is the cheaper handshake pattern).
    Targeted {
        /// Dirty fraction in `0.0..=1.0` above which a whole-window flush
        /// is used instead of per-target flushes.
        fallback_fraction: f64,
    },
    /// Non-blocking targeted flush (`MPI_WIN_RFLUSH`, §5's "even better
    /// approach"): per-target flushes are *initiated*, local release work
    /// overlaps their latency, and completion is waited at the end. Same
    /// dirty-fraction fallback as [`FlushMode::Targeted`].
    Rflush {
        /// See [`FlushMode::Targeted::fallback_fraction`].
        fallback_fraction: f64,
    },
}

impl FlushMode {
    /// Targeted flush with the default 50% dirty-fraction fallback.
    pub fn targeted() -> Self {
        FlushMode::Targeted {
            fallback_fraction: 0.5,
        }
    }

    /// Non-blocking targeted flush with the default 50% fallback.
    pub fn rflush() -> Self {
        FlushMode::Rflush {
            fallback_fraction: 0.5,
        }
    }

    /// Stable identifier used in bench JSON and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            FlushMode::All => "all",
            FlushMode::Targeted { .. } => "targeted",
            FlushMode::Rflush { .. } => "rflush",
        }
    }
}

/// Tag used for runtime AMs on the MPI substrate's private communicator.
pub(crate) const RT_TAG: i64 = 7;
/// GASNet handler index used for runtime AMs.
pub(crate) const RT_HANDLER: usize = caf_gasnetsim::FIRST_USER_HANDLER;

/// Per-image substrate state. Boxed: one per image, matched constantly.
pub(crate) enum Backend {
    Mpi(Box<MpiBackend>),
    Gasnet(Box<GasnetBackend>),
}

/// CAF-MPI: MPI-3 is the runtime (paper §3).
pub(crate) struct MpiBackend {
    pub mpi: Mpi,
    /// Private communicator carrying runtime AMs (events, shipping), so
    /// they can never match application-level receives.
    pub rt_comm: Comm,
    /// Every window the runtime has allocated, keyed by window id. Used by
    /// `flush_all` ("every window the local process has touched", §3.5) and
    /// to resolve `PutWithEvent` targets.
    pub windows: RefCell<HashMap<u64, Arc<Window>>>,
    /// Release-point completion policy (see [`FlushMode`]).
    pub flush: FlushMode,
}

impl MpiBackend {
    /// Blocking completion of one window under the configured policy.
    fn flush_window(&self, win: &Window) {
        let (targeted, fallback_fraction) = match self.flush {
            FlushMode::All => (false, 0.0),
            // In a blocking context Rflush degrades to Targeted: with no
            // local work left to overlap, issue+wait back-to-back is just
            // a per-target flush.
            FlushMode::Targeted { fallback_fraction } | FlushMode::Rflush { fallback_fraction } => {
                (true, fallback_fraction)
            }
        };
        if !targeted {
            self.mpi.win_flush_all(win).expect("flush_all");
            return;
        }
        let dirty = win.dirty_targets();
        if dirty.is_empty() {
            return;
        }
        if dirty.len() as f64 > fallback_fraction * win.comm().size() as f64 {
            self.mpi.win_flush_all(win).expect("flush_all fallback");
            return;
        }
        for target in dirty {
            self.mpi.win_flush(win, target).expect("targeted flush");
        }
    }

    /// Initiate non-blocking per-target flushes for every dirty pair
    /// (Rflush mode's issue phase). Windows past the dirty-fraction
    /// threshold are completed synchronously here; everything else
    /// returns as an in-flight request to be waited after the caller's
    /// overlapped work.
    pub(crate) fn rflush_issue_all(&self) -> Vec<FlushRequest> {
        let mut reqs = Vec::new();
        let fallback_fraction = match self.flush {
            FlushMode::Rflush { fallback_fraction } => fallback_fraction,
            _ => return reqs,
        };
        for win in self.windows.borrow().values() {
            let dirty = win.dirty_targets();
            if dirty.is_empty() {
                continue;
            }
            if dirty.len() as f64 > fallback_fraction * win.comm().size() as f64 {
                self.mpi.win_flush_all(win).expect("flush_all fallback");
                continue;
            }
            for target in dirty {
                reqs.push(self.mpi.win_rflush(win, target).expect("rflush issue"));
            }
        }
        reqs
    }
}

/// CAF-GASNet: the original runtime design, for baseline comparison.
pub(crate) struct GasnetBackend {
    pub g: Gasnet,
    /// Allocator over the attached segment (coarrays live inside it).
    pub arena: SegmentArena,
    /// Decoded-but-unhandled runtime AMs, filled by the GASNet handler.
    pub inbox: Arc<SegQueue<(usize, Vec<u8>)>>,
    /// Region id -> this image's segment offset (PutWithEvent resolution
    /// and bookkeeping).
    pub regions: RefCell<HashMap<u64, usize>>,
    /// Optional co-resident MPI library (the paper's "duplicate runtimes"
    /// configuration, used by hybrid applications such as CGPOP and by the
    /// Figure-1 memory experiment).
    pub hybrid_mpi: Option<Mpi>,
}

impl Backend {
    pub fn rank(&self) -> usize {
        match self {
            Backend::Mpi(b) => b.mpi.rank(),
            Backend::Gasnet(b) => b.g.rank(),
        }
    }

    pub fn size(&self) -> usize {
        match self {
            Backend::Mpi(b) => b.mpi.size(),
            Backend::Gasnet(b) => b.g.size(),
        }
    }

    /// Send a runtime message to a global rank. Non-blocking (paper §3.4:
    /// notifications use `MPI_ISEND` to avoid deadlock in circular
    /// wait/notify chains).
    pub fn send_rtmsg(&self, target: usize, msg: &RtMsg) {
        let bytes = msg.encode();
        if caf_trace::enabled() {
            caf_trace::instant(
                caf_trace::Op::RtMsgSend,
                Some(target),
                bytes.len() as u64,
                None,
            );
        }
        match self {
            Backend::Mpi(b) => {
                b.mpi
                    .isend(&b.rt_comm, target, RT_TAG, &bytes)
                    .expect("runtime AM send")
                    .wait();
            }
            Backend::Gasnet(b) => {
                assert!(
                    bytes.len() <= AM_MAX_MEDIUM,
                    "runtime message of {} bytes exceeds the medium-AM limit; \
                     large transfers must use puts",
                    bytes.len()
                );
                b.g.am_request_medium(target, RT_HANDLER, &[], &bytes)
                    .expect("runtime AM send");
            }
        }
    }

    /// Non-blocking poll for one runtime message.
    pub fn try_recv_rtmsg(&self) -> Option<RtMsg> {
        match self {
            Backend::Mpi(b) => {
                try_match_rt(&b.mpi, &b.rt_comm, RT_TAG).map(|bytes| RtMsg::decode(&bytes))
            }
            Backend::Gasnet(b) => {
                if let Some((_src, bytes)) = b.inbox.pop() {
                    return Some(RtMsg::decode(&bytes));
                }
                b.g.poll();
                b.inbox.pop().map(|(_src, bytes)| RtMsg::decode(&bytes))
            }
        }
    }

    /// Block until a runtime message arrives. The blocking wait makes
    /// progress on the substrate (paper §3.4: "the blocking polling
    /// operation allows the MPI runtime to make progress internally").
    ///
    /// Panics if an image fails while waiting — a runtime-message wait can
    /// be satisfied by *any* image, so a failure anywhere makes the wait
    /// unfulfillable in general. Callers that want to survive use
    /// [`Backend::recv_rtmsg_blocking_stat`].
    pub fn recv_rtmsg_blocking(&self) -> RtMsg {
        let watch: Vec<usize> = (0..self.size()).collect();
        self.recv_rtmsg_blocking_stat(&watch).unwrap_or_else(|failed| {
            panic!("runtime AM wait: image(s) {failed:?} failed (no stat channel)")
        })
    }

    /// Fallible runtime-message wait: returns the failed subset of `watch`
    /// instead of blocking forever once a watched image has died. An
    /// empty `watch` waits unconditionally.
    ///
    /// On the MPI substrate the runtime communicator spans the world, so
    /// the detection granularity is the whole job regardless of `watch`
    /// (a narrower watch is honored on GASNet, whose AM wait screens
    /// per-rank).
    pub fn recv_rtmsg_blocking_stat(&self, watch: &[usize]) -> Result<RtMsg, Vec<usize>> {
        let _span = caf_trace::span(caf_trace::Op::RtMsgRecvBlocking);
        match self {
            Backend::Mpi(b) => match b.mpi.recv::<u8>(&b.rt_comm, Src::Any, Tag::Is(RT_TAG)) {
                Ok((bytes, _st)) => Ok(RtMsg::decode(&bytes)),
                Err(e) => Err(crate::image::failed_of_err(e)),
            },
            Backend::Gasnet(b) => loop {
                if let Some((_src, bytes)) = b.inbox.pop() {
                    return Ok(RtMsg::decode(&bytes));
                }
                match b.g.wait_am_packet_watching(watch) {
                    Ok(pkt) => b.g.dispatch_packet(pkt),
                    Err(e) => return Err(crate::image::failed_of_err(e)),
                }
            },
        }
    }

    /// Handle onto the substrate's failure registry.
    pub fn fault(&self) -> caf_fabric::Fault {
        match self {
            Backend::Mpi(b) => b.mpi.fault(),
            Backend::Gasnet(b) => b.g.fault(),
        }
    }

    /// Complete all outstanding one-sided operations to every target, on
    /// every region this image has touched.
    ///
    /// * MPI: under [`FlushMode::All`], `MPI_Win_flush_all` per window —
    ///   each one Θ(P) in MPICH derivatives, the root cause of CAF-MPI's
    ///   `event_notify` cost (paper §4.1). Under the targeted modes, a
    ///   `MPI_Win_flush` per dirty `(window, rank)` pair, with the
    ///   configured whole-window fallback (§5).
    /// * GASNet: `gasnet_wait_syncnbi_puts` — a local operation; GASNet
    ///   puts are remotely complete at sync.
    pub fn flush_all(&self) {
        match self {
            Backend::Mpi(b) => {
                for win in b.windows.borrow().values() {
                    b.flush_window(win);
                }
            }
            Backend::Gasnet(b) => {
                b.g.wait_syncnbi_puts();
            }
        }
    }

    /// Runtime memory overhead in bytes (Figure 1): the substrate's own
    /// accounting, plus the co-resident MPI library's when running
    /// duplicate runtimes.
    pub fn memory_overhead(&self) -> usize {
        match self {
            Backend::Mpi(b) => b.mpi.mem().runtime_overhead(),
            Backend::Gasnet(b) => {
                b.g.mem().runtime_overhead()
                    + b.hybrid_mpi
                        .as_ref()
                        .map_or(0, |m| m.mem().runtime_overhead())
            }
        }
    }
}

/// Runtime-AM matcher on the MPI substrate (non-blocking).
fn try_match_rt(mpi: &Mpi, rt_comm: &Comm, tag: i64) -> Option<Vec<u8>> {
    let mut req = mpi.irecv::<u8>(rt_comm, Src::Any, Tag::Is(tag));
    if req.test(mpi) {
        let (bytes, _st) = req.wait(mpi);
        Some(bytes)
    } else {
        // Dropping an unmatched irecv is safe on this substrate: irecv
        // posts no receive state until matched.
        drop(req);
        None
    }
}
