//! The substrate abstraction: one CAF runtime, two communication layers.
//!
//! `Backend::Mpi` is the paper's contribution (CAF-MPI, §3); `Backend::Gasnet`
//! is the baseline the paper compares against (CAF-GASNet, the original
//! CAF 2.0 runtime). The runtime above this module is substrate-agnostic;
//! everything substrate-specific — remote references, AM transport, flush
//! semantics, collectives availability — lives here.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;

use crossbeam::queue::SegQueue;

use caf_gasnetsim::{Gasnet, AM_MAX_MEDIUM};
use caf_mpisim::{Comm, Mpi, Src, Tag, Window};

use crate::arena::SegmentArena;
use crate::rtmsg::RtMsg;

/// Tag used for runtime AMs on the MPI substrate's private communicator.
pub(crate) const RT_TAG: i64 = 7;
/// GASNet handler index used for runtime AMs.
pub(crate) const RT_HANDLER: usize = caf_gasnetsim::am::FIRST_USER_HANDLER;

/// Per-image substrate state. Boxed: one per image, matched constantly.
pub(crate) enum Backend {
    Mpi(Box<MpiBackend>),
    Gasnet(Box<GasnetBackend>),
}

/// CAF-MPI: MPI-3 is the runtime (paper §3).
pub(crate) struct MpiBackend {
    pub mpi: Mpi,
    /// Private communicator carrying runtime AMs (events, shipping), so
    /// they can never match application-level receives.
    pub rt_comm: Comm,
    /// Every window the runtime has allocated, keyed by window id. Used by
    /// `flush_all` ("every window the local process has touched", §3.5) and
    /// to resolve `PutWithEvent` targets.
    pub windows: RefCell<HashMap<u64, Arc<Window>>>,
}

/// CAF-GASNet: the original runtime design, for baseline comparison.
pub(crate) struct GasnetBackend {
    pub g: Gasnet,
    /// Allocator over the attached segment (coarrays live inside it).
    pub arena: SegmentArena,
    /// Decoded-but-unhandled runtime AMs, filled by the GASNet handler.
    pub inbox: Arc<SegQueue<(usize, Vec<u8>)>>,
    /// Region id -> this image's segment offset (PutWithEvent resolution
    /// and bookkeeping).
    pub regions: RefCell<HashMap<u64, usize>>,
    /// Optional co-resident MPI library (the paper's "duplicate runtimes"
    /// configuration, used by hybrid applications such as CGPOP and by the
    /// Figure-1 memory experiment).
    pub hybrid_mpi: Option<Mpi>,
}

impl Backend {
    pub fn rank(&self) -> usize {
        match self {
            Backend::Mpi(b) => b.mpi.rank(),
            Backend::Gasnet(b) => b.g.rank(),
        }
    }

    pub fn size(&self) -> usize {
        match self {
            Backend::Mpi(b) => b.mpi.size(),
            Backend::Gasnet(b) => b.g.size(),
        }
    }

    /// Send a runtime message to a global rank. Non-blocking (paper §3.4:
    /// notifications use `MPI_ISEND` to avoid deadlock in circular
    /// wait/notify chains).
    pub fn send_rtmsg(&self, target: usize, msg: &RtMsg) {
        let bytes = msg.encode();
        if caf_trace::enabled() {
            caf_trace::instant(
                caf_trace::Op::RtMsgSend,
                Some(target),
                bytes.len() as u64,
                None,
            );
        }
        match self {
            Backend::Mpi(b) => {
                b.mpi
                    .isend(&b.rt_comm, target, RT_TAG, &bytes)
                    .expect("runtime AM send")
                    .wait();
            }
            Backend::Gasnet(b) => {
                assert!(
                    bytes.len() <= AM_MAX_MEDIUM,
                    "runtime message of {} bytes exceeds the medium-AM limit; \
                     large transfers must use puts",
                    bytes.len()
                );
                b.g.am_request_medium(target, RT_HANDLER, &[], &bytes)
                    .expect("runtime AM send");
            }
        }
    }

    /// Non-blocking poll for one runtime message.
    pub fn try_recv_rtmsg(&self) -> Option<RtMsg> {
        match self {
            Backend::Mpi(b) => {
                try_match_rt(&b.mpi, &b.rt_comm, RT_TAG).map(|bytes| RtMsg::decode(&bytes))
            }
            Backend::Gasnet(b) => {
                if let Some((_src, bytes)) = b.inbox.pop() {
                    return Some(RtMsg::decode(&bytes));
                }
                b.g.poll();
                b.inbox.pop().map(|(_src, bytes)| RtMsg::decode(&bytes))
            }
        }
    }

    /// Block until a runtime message arrives. The blocking wait makes
    /// progress on the substrate (paper §3.4: "the blocking polling
    /// operation allows the MPI runtime to make progress internally").
    pub fn recv_rtmsg_blocking(&self) -> RtMsg {
        let _span = caf_trace::span(caf_trace::Op::RtMsgRecvBlocking);
        match self {
            Backend::Mpi(b) => {
                let (bytes, _st) = b
                    .mpi
                    .recv::<u8>(&b.rt_comm, Src::Any, Tag::Is(RT_TAG))
                    .expect("runtime AM recv");
                RtMsg::decode(&bytes)
            }
            Backend::Gasnet(b) => loop {
                if let Some((_src, bytes)) = b.inbox.pop() {
                    return RtMsg::decode(&bytes);
                }
                let pkt = b.g.wait_am_packet();
                b.g.dispatch_packet(pkt);
            },
        }
    }

    /// Complete all outstanding one-sided operations to every target, on
    /// every region this image has touched.
    ///
    /// * MPI: `MPI_Win_flush_all` per window — each one Θ(P) in MPICH
    ///   derivatives, the root cause of CAF-MPI's `event_notify` cost
    ///   (paper §4.1).
    /// * GASNet: `gasnet_wait_syncnbi_puts` — a local operation; GASNet
    ///   puts are remotely complete at sync.
    pub fn flush_all(&self) {
        match self {
            Backend::Mpi(b) => {
                for win in b.windows.borrow().values() {
                    b.mpi.win_flush_all(win).expect("flush_all");
                }
            }
            Backend::Gasnet(b) => {
                b.g.wait_syncnbi_puts();
            }
        }
    }

    /// Runtime memory overhead in bytes (Figure 1): the substrate's own
    /// accounting, plus the co-resident MPI library's when running
    /// duplicate runtimes.
    pub fn memory_overhead(&self) -> usize {
        match self {
            Backend::Mpi(b) => b.mpi.mem().runtime_overhead(),
            Backend::Gasnet(b) => {
                b.g.mem().runtime_overhead()
                    + b.hybrid_mpi
                        .as_ref()
                        .map_or(0, |m| m.mem().runtime_overhead())
            }
        }
    }
}

/// Runtime-AM matcher on the MPI substrate (non-blocking).
fn try_match_rt(mpi: &Mpi, rt_comm: &Comm, tag: i64) -> Option<Vec<u8>> {
    let mut req = mpi.irecv::<u8>(rt_comm, Src::Any, Tag::Is(tag));
    if req.test(mpi) {
        let (bytes, _st) = req.wait(mpi);
        Some(bytes)
    } else {
        // Dropping an unmatched irecv is safe on this substrate: irecv
        // posts no receive state until matched.
        drop(req);
        None
    }
}
