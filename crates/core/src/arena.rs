//! Segment allocator for the GASNet substrate.
//!
//! GASNet exposes one fixed segment per image; the CAF-GASNet runtime
//! manages coarray storage inside it with its own allocator (the original
//! CAF 2.0 runtime did the same). This is a first-fit free-list allocator
//! with coalescing, 8-byte granularity.

use std::cell::RefCell;

/// First-fit free-list allocator over a fixed byte range.
#[derive(Debug)]
pub struct SegmentArena {
    capacity: usize,
    /// Sorted, non-adjacent `(offset, len)` free runs.
    free: RefCell<Vec<(usize, usize)>>,
}

const ALIGN: usize = 8;

fn round_up(x: usize) -> usize {
    x.div_ceil(ALIGN) * ALIGN
}

impl SegmentArena {
    /// An arena over `[0, capacity)`.
    pub fn new(capacity: usize) -> Self {
        let cap = capacity / ALIGN * ALIGN;
        SegmentArena {
            capacity: cap,
            free: RefCell::new(if cap > 0 { vec![(0, cap)] } else { vec![] }),
        }
    }

    /// Total managed bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes currently free.
    pub fn free_bytes(&self) -> usize {
        self.free.borrow().iter().map(|&(_, l)| l).sum()
    }

    /// Allocate `bytes` (rounded up to 8); returns the offset, or `None`
    /// when no run is large enough.
    pub fn alloc(&self, bytes: usize) -> Option<usize> {
        let need = round_up(bytes.max(1));
        let mut free = self.free.borrow_mut();
        for i in 0..free.len() {
            let (off, len) = free[i];
            if len >= need {
                if len == need {
                    free.remove(i);
                } else {
                    free[i] = (off + need, len - need);
                }
                return Some(off);
            }
        }
        None
    }

    /// Return `[offset, offset + bytes)` to the free list, coalescing with
    /// neighbours.
    ///
    /// # Panics
    ///
    /// Panics on frees that overlap an existing free run (double free) or
    /// fall outside the arena.
    pub fn free(&self, offset: usize, bytes: usize) {
        let len = round_up(bytes.max(1));
        assert!(
            offset % ALIGN == 0 && offset + len <= self.capacity,
            "free of [{offset}, {}) outside arena of {}",
            offset + len,
            self.capacity
        );
        let mut free = self.free.borrow_mut();
        let pos = free.partition_point(|&(o, _)| o < offset);
        // Overlap checks against neighbours.
        if pos > 0 {
            let (po, pl) = free[pos - 1];
            assert!(po + pl <= offset, "double free overlapping [{po}, {})", po + pl);
        }
        if pos < free.len() {
            let (no, _) = free[pos];
            assert!(offset + len <= no, "double free overlapping [{no}, ..)");
        }
        free.insert(pos, (offset, len));
        // Coalesce with successor, then predecessor.
        if pos + 1 < free.len() && free[pos].0 + free[pos].1 == free[pos + 1].0 {
            free[pos].1 += free[pos + 1].1;
            free.remove(pos + 1);
        }
        if pos > 0 && free[pos - 1].0 + free[pos - 1].1 == free[pos].0 {
            free[pos - 1].1 += free[pos].1;
            free.remove(pos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_advances_and_frees_coalesce() {
        let a = SegmentArena::new(1024);
        let x = a.alloc(100).unwrap();
        let y = a.alloc(100).unwrap();
        let z = a.alloc(100).unwrap();
        assert_eq!((x, y, z), (0, 104, 208));
        a.free(y, 100);
        a.free(x, 100);
        a.free(z, 100);
        // Everything coalesced back into one run.
        assert_eq!(a.free_bytes(), 1024);
        assert_eq!(a.alloc(1024), Some(0));
    }

    #[test]
    fn first_fit_reuses_holes() {
        let a = SegmentArena::new(256);
        let x = a.alloc(64).unwrap();
        let _y = a.alloc(64).unwrap();
        a.free(x, 64);
        // The hole at 0 is reused for a fitting request.
        assert_eq!(a.alloc(32), Some(0));
    }

    #[test]
    fn exhaustion_returns_none() {
        let a = SegmentArena::new(64);
        assert!(a.alloc(64).is_some());
        assert!(a.alloc(8).is_none());
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_detected() {
        let a = SegmentArena::new(64);
        let x = a.alloc(16).unwrap();
        a.free(x, 16);
        a.free(x, 16);
    }

    #[test]
    fn zero_sized_allocs_get_distinct_slots() {
        let a = SegmentArena::new(64);
        let x = a.alloc(0).unwrap();
        let y = a.alloc(0).unwrap();
        assert_ne!(x, y);
    }

    #[test]
    fn capacity_rounds_down_to_words() {
        let a = SegmentArena::new(29);
        assert_eq!(a.capacity(), 24);
    }

    #[test]
    fn interleaved_alloc_free_stress() {
        let a = SegmentArena::new(4096);
        let mut live: Vec<(usize, usize)> = Vec::new();
        // Deterministic pseudo-random workload.
        let mut state = 12345u64;
        let mut rng = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as usize
        };
        for _ in 0..500 {
            if live.len() < 8 && rng() % 2 == 0 {
                let sz = rng() % 256 + 1;
                if let Some(off) = a.alloc(sz) {
                    // No overlap with any live allocation.
                    for &(lo, ll) in &live {
                        let end = off + super::round_up(sz);
                        assert!(end <= lo || lo + super::round_up(ll) <= off);
                    }
                    live.push((off, sz));
                }
            } else if let Some(i) = live.pop() {
                a.free(i.0, i.1);
            }
        }
        for (off, sz) in live.drain(..) {
            a.free(off, sz);
        }
        assert_eq!(a.free_bytes(), 4096);
    }
}
