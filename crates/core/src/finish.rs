//! `finish` blocks, function shipping, and distributed termination
//! detection (paper §2.1, §3.5).
//!
//! A `finish` is a block-structured, *collective* global synchronization:
//! every image of the team opens a matching block, and on exit all
//! asynchronous operations issued inside — including chains of shipped
//! functions that ship further functions — are globally complete.
//!
//! Termination of shipping chains is detected with Yang's algorithm: the
//! team repeatedly SUM-reduces the difference between functions shipped
//! and functions completed; quiescence is a zero sum. In the worst case
//! this takes `n` rounds, where `n` is the longest shipping chain. A fast
//! path (`finish_fast`) handles the no-shipping case with
//! `MPI_WIN_FLUSH_ALL` on every touched window plus a team barrier.

use crate::image::Image;
use crate::rtmsg::RtMsg;
use crate::stats::StatCat;
use crate::team::Team;

impl Image {
    /// Run `body` inside a finish block over `team`. On return, all
    /// asynchronous operations and all (transitively) shipped functions
    /// issued within the block are globally complete. Blocks nest: an
    /// inner block only awaits its own operations (paper §2.1).
    pub fn finish<R>(&self, team: &Team, body: impl FnOnce(&Image) -> R) -> R {
        let (result, stat) = self.finish_stat(team, body);
        assert!(
            stat.is_ok(),
            "finish: image(s) {:?} failed (use finish_stat to handle failure)",
            stat.failed()
        );
        result
    }

    /// As [`Image::finish`], with a failure screen: returns the body's
    /// result together with a [`crate::Stat`]. Failure detection
    /// piggybacks on the termination-detection rounds themselves — each
    /// SUM-reduce of the shipping counters doubles as a heartbeat, so a
    /// member that dies mid-block surfaces as
    /// [`crate::Stat::FailedImage`] on the next round instead of stalling
    /// quiescence forever. On a failed exit the block's counters are
    /// discarded: completions owed by the dead image can never arrive.
    pub fn finish_stat<R>(
        &self,
        team: &Team,
        body: impl FnOnce(&Image) -> R,
    ) -> (R, crate::stat::Stat) {
        self.fault_point("finish");
        let fid = self.next_team_token(team, 0xF1);
        self.finish_stack.borrow_mut().push(fid);
        let result = body(self);
        self.finish_stack.borrow_mut().pop();

        let stat = self.stats().timed(StatCat::Finish, || {
            // Aggregation buckets drain first, accounted to this block's
            // id (the stack is already popped, so the id is explicit):
            // every batch — and every store-and-forward hop it spawns —
            // counts as a shipped/completed pair, so Yang's loop below
            // awaits coalesced traffic exactly like shipping chains.
            self.agg_drain_all(fid);
            // Local then remote completion of this image's one-sided ops,
            // under the configured flush policy (targeted/rflush aware).
            self.release_all();
            // Yang's termination detection over shipping counters.
            let stat = loop {
                self.poll(); // execute any pending shipped functions
                let (shipped, completed) = {
                    let counters = self.finish_counters.borrow();
                    counters.get(&fid).copied().unwrap_or((0, 0))
                };
                match self.allreduce_stat(team, &[shipped as i64 - completed as i64], |a, b| {
                    a + b
                }) {
                    Ok(sum) => {
                        debug_assert!(sum[0] >= 0, "more completions than ships");
                        if sum[0] == 0 {
                            break crate::stat::Stat::Ok;
                        }
                    }
                    Err(stat) => break stat,
                }
            };
            self.finish_counters.borrow_mut().remove(&fid);
            stat
        });
        (result, stat)
    }

    /// The fast finish for code that does not use function shipping:
    /// flush every touched window, then barrier (paper §3.5).
    pub fn finish_fast<R>(&self, team: &Team, body: impl FnOnce(&Image) -> R) -> R {
        let result = body(self);
        self.stats().timed(StatCat::Finish, || {
            let agg = self.agg_enabled();
            if agg {
                self.agg_drain_all(0);
            }
            self.release_all();
            self.barrier(team);
            if agg {
                // Batched AMs complete by target-side application, not by
                // a flush: after the barrier every batch sits in its
                // target's mailbox (sends inject synchronously), so one
                // poll+barrier round delivers it — and with routing on,
                // each round advances forwarded records one hop, so
                // log2(P) rounds cover the longest hypercube chain.
                let rounds = if self.agg_config().routing {
                    self.num_images().next_power_of_two().trailing_zeros().max(1)
                } else {
                    1
                };
                for _ in 0..rounds {
                    self.poll();
                    self.barrier(team);
                }
            }
        });
        result
    }

    /// Ship `f` to run on team member `target` (function shipping,
    /// paper §2.1). The shipped function may perform coarray reads and
    /// writes, post events, and ship further functions; completion is
    /// awaited by the innermost enclosing [`Image::finish`] block.
    ///
    /// Shipped functions must not call team collectives: the executing
    /// image runs them from its progress engine, outside any collective
    /// schedule (a documented narrowing of CAF 2.0's "full range of
    /// operations" — see DESIGN.md).
    pub fn ship(
        &self,
        team: &Team,
        target: usize,
        f: impl FnOnce(&Image) + Send + 'static,
    ) {
        let fid = self.finish_stack.borrow().last().copied().unwrap_or(0);
        self.finish_counters
            .borrow_mut()
            .entry(fid)
            .or_insert((0, 0))
            .0 += 1;
        let global = team.global_rank(target);
        if global == self.this_image() {
            // Self-shipping executes immediately (same as CAF 2.0).
            f(self);
            self.backend_flush_all();
            self.finish_counters
                .borrow_mut()
                .entry(fid)
                .or_insert((0, 0))
                .1 += 1;
            return;
        }
        let slot = self.ship_reg.park(Box::new(f));
        if caf_trace::enabled() {
            caf_trace::instant_d(caf_trace::Op::Ship, Some(global), 0, None, Some(slot));
        }
        // The executor joins the shipper's clock before running the
        // closure (token = the globally unique registry slot).
        #[cfg(feature = "check")]
        caf_check::hooks::hb_send(self.this_image(), caf_check::hooks::NS_SHIP, slot, global);
        self.backend
            .send_rtmsg(global, &RtMsg::Ship { slot, finish_id: fid });
    }
}

#[cfg(test)]
mod tests {
    use crate::coarray::Coarray;
    use crate::image::{CafConfig, CafUniverse, SubstrateKind};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn both(n: usize, f: impl Fn(&crate::image::Image) + Send + Sync) {
        for kind in [SubstrateKind::Mpi, SubstrateKind::Gasnet] {
            CafUniverse::run_with_config(n, CafConfig::on(kind), |img| f(img));
        }
    }

    #[test]
    fn finish_without_shipping_is_a_sync() {
        both(4, |img| {
            let w = img.team_world();
            let ca: Coarray<u64> = img.coarray_alloc(&w, 4);
            img.finish(&w, |img| {
                let peer = (img.this_image() + 1) % 4;
                img.copy_async_put(&ca, peer, 0, &[img.this_image() as u64 + 1], Default::default());
            });
            // After finish: delivery is globally complete.
            let writer = (img.this_image() + 3) % 4;
            assert_eq!(ca.local_vec(img)[0], writer as u64 + 1);
            img.coarray_free(&w, ca);
        });
    }

    #[test]
    fn shipped_functions_execute_before_finish_exits() {
        let hits = Arc::new(AtomicU64::new(0));
        for kind in [SubstrateKind::Mpi, SubstrateKind::Gasnet] {
            let hits = Arc::clone(&hits);
            CafUniverse::run_with_config(4, CafConfig::on(kind), move |img| {
                let w = img.team_world();
                let h = Arc::clone(&hits);
                img.finish(&w, |img| {
                    let target = (img.this_image() + 1) % 4;
                    img.ship(&w, target, move |_exec| {
                        h.fetch_add(1, Ordering::SeqCst);
                    });
                });
                // Every image shipped one function; all must have run.
            });
        }
        assert_eq!(hits.load(Ordering::SeqCst), 8); // 4 images × 2 substrates
    }

    #[test]
    fn shipping_chains_terminate() {
        // Each shipped function ships another, three levels deep.
        both(3, |img| {
            let w = img.team_world();
            img.finish(&w, |img| {
                if img.this_image() == 0 {
                    let w1 = w.clone();
                    img.ship(&w, 1, move |exec| {
                        let w2 = w1.clone();
                        exec.ship(&w1, 2, move |exec2| {
                            exec2.ship(&w2, 0, |_| {});
                        });
                    });
                }
            });
        });
    }

    #[test]
    fn shipped_function_writes_coarray() {
        both(2, |img| {
            let w = img.team_world();
            let ca: Coarray<u64> = img.coarray_alloc(&w, 1);
            img.finish(&w, |img| {
                if img.this_image() == 0 {
                    let ca2 = ca.clone();
                    // Run on image 1; write into image 0's part from there.
                    img.ship(&w, 1, move |exec| {
                        ca2.write(exec, 0, 0, &[31337]);
                    });
                }
            });
            if img.this_image() == 0 {
                assert_eq!(ca.local_vec(img)[0], 31337);
            }
            img.coarray_free(&w, ca);
        });
    }

    #[test]
    fn shipped_handles_resolve_executor_local_part() {
        // Regression: a coarray handle captured by a shipped closure must
        // address the *executor's* local part, not the shipper's. With
        // all images shipping an increment of image 0's slot, image 0
        // must see every increment.
        both(4, |img| {
            let w = img.team_world();
            let ca: Coarray<u64> = img.coarray_alloc(&w, 2);
            img.finish(&w, |img| {
                let ca2 = ca.clone();
                img.ship(&w, 0, move |exec| {
                    let v = ca2.local_vec(exec)[1];
                    ca2.local_write(exec, 1, &[v + 1]);
                });
            });
            if img.this_image() == 0 {
                assert_eq!(ca.local_vec(img)[1], 4);
            } else {
                assert_eq!(ca.local_vec(img)[1], 0, "shipper's part untouched");
            }
            img.coarray_free(&w, ca);
        });
    }

    #[test]
    fn nested_finish_blocks() {
        both(2, |img| {
            let w = img.team_world();
            let outer_hits = Arc::new(AtomicU64::new(0));
            let oh = Arc::clone(&outer_hits);
            img.finish(&w, |img| {
                img.finish(&w, |img2| {
                    let ohh = Arc::clone(&oh);
                    let peer = 1 - img2.this_image();
                    img2.ship(&img2.team_world(), peer, move |_| {
                        ohh.fetch_add(1, Ordering::SeqCst);
                    });
                });
                // Inner finish completed: the ship this image issued has
                // executed (each image's counter travels with its own
                // shipped closure, so it sees exactly one increment).
                assert_eq!(oh.load(Ordering::SeqCst), 1);
            });
        });
    }

    #[test]
    fn self_ship_runs_inline() {
        both(1, |img| {
            let w = img.team_world();
            let ran = Arc::new(AtomicU64::new(0));
            let r = Arc::clone(&ran);
            img.finish(&w, |img| {
                img.ship(&w, 0, move |_| {
                    r.fetch_add(1, Ordering::SeqCst);
                });
                assert_eq!(ran.load(Ordering::SeqCst), 1, "self-ship is inline");
            });
        });
    }

    #[test]
    fn finish_fast_synchronizes_puts() {
        both(4, |img| {
            let w = img.team_world();
            let ca: Coarray<u64> = img.coarray_alloc(&w, 1);
            img.finish_fast(&w, |img| {
                let peer = (img.this_image() + 1) % 4;
                img.copy_async_put(&ca, peer, 0, &[7], Default::default());
            });
            assert_eq!(ca.local_vec(img)[0], 7);
            img.coarray_free(&w, ca);
        });
    }
}
