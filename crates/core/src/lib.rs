#![warn(missing_docs)]

//! # caf — Coarray Fortran 2.0 runtime over MPI-3 or GASNet
//!
//! A Rust reproduction of the runtime system described in *Portable,
//! MPI-Interoperable Coarray Fortran* (Yang, Bland, Mellor-Crummey,
//! Balaji — PPoPP 2014). The paper redesigns the CAF 2.0 runtime, which
//! was originally built on GASNet, to run on MPI-3, so that one application
//! can mix MPI and CAF on a single runtime with full interoperability.
//!
//! This crate implements **both** runtimes over the same in-process
//! fabric:
//!
//! * [`SubstrateKind::Mpi`] — *CAF-MPI*, the paper's contribution:
//!   coarrays are `MPI_Win_allocate` windows under a lifetime
//!   `lock_all` epoch; remote references are `(window, rank, displacement)`
//!   triples; the runtime's active messages ride `MPI_Isend`; events
//!   notify through `MPI_Waitall` + `MPI_Win_flush_all` + AM; `cofence`
//!   is `MPI_Waitall` over request arrays; `finish` uses distributed
//!   termination detection or a flush_all+barrier fast path.
//! * [`SubstrateKind::Gasnet`] — *CAF-GASNet*, the original design and
//!   the paper's baseline: coarrays live in the attached GASNet segment
//!   behind an `(image, address)` reference, events and shipping use
//!   native GASNet AMs, and — because the GASNet core API has no
//!   collectives — every team collective is hand-rolled in the runtime.
//!
//! ## Quick start
//!
//! ```
//! use caf::{CafUniverse, Coarray};
//!
//! // 4 images, CAF-MPI substrate (the default).
//! let results = CafUniverse::run(4, |img| {
//!     let world = img.team_world();
//!     let ca: Coarray<u64> = img.coarray_alloc(&world, 1);
//!     // Everyone writes its image index to the right neighbour.
//!     let right = (img.this_image() + 1) % img.num_images();
//!     ca.write(img, right, 0, &[img.this_image() as u64]);
//!     img.sync_all();
//!     let got = ca.local_vec(img)[0];
//!     img.coarray_free(&world, ca);
//!     got
//! });
//! assert_eq!(results, vec![3, 0, 1, 2]);
//! ```
//!
//! ## Hybrid MPI + CAF
//!
//! On the MPI substrate, [`Image::mpi`] exposes the *same* MPI library the
//! CAF runtime uses — an application can freely interleave `MPI_Reduce`
//! with coarray writes (this is what the CGPOP miniapp does). Because all
//! data movement funnels through one progress engine, the
//! may-deadlock pattern of the paper's Figure 2 is safe: a coarray write
//! needs no target-side progress while the target blocks in `MPI_Barrier`.

pub mod agg;
pub mod arena;
pub mod asyncops;
pub(crate) mod backend;
pub mod coarray;
pub mod coarray2d;
pub mod collectives;
pub mod event;
pub mod finish;
pub mod image;
pub mod rtmsg;
pub mod ship;
pub mod stat;
pub mod stats;
pub mod team;

pub use asyncops::AsyncOpts;
pub use caf_agg::{AggConfig, AggStats};
pub use caf_fabric::Pod;
pub use caf_fabric::{FaultPlan, Kill, KillSite};
pub use caf_sched::{ExecConfig, ExecMode};
pub use caf_gasnetsim::{GasnetConfig, SrqMode};
pub use caf_mpisim::MpiConfig;
pub use coarray::{Coarray, RemoteRef, Section};
pub use coarray2d::Coarray2d;
pub use event::{Event, NotifyFlush};
pub use backend::FlushMode;
pub use image::{CafConfig, CafUniverse, Image, SubstrateKind};
pub use stat::{ImageStatus, Stat};
pub use stats::{StatCat, Stats, StatsReport};
pub use team::Team;

/// Convenience re-exports for application code
/// (`use caf::prelude::*;`).
pub mod prelude {
    pub use crate::asyncops::AsyncOpts;
    pub use caf_agg::AggConfig;
    pub use caf_sched::{ExecConfig, ExecMode};
    pub use crate::coarray::{Coarray, Section};
    pub use crate::coarray2d::Coarray2d;
    pub use crate::event::{Event, NotifyFlush};
    pub use crate::image::{CafConfig, CafUniverse, Image, SubstrateKind};
    pub use crate::stat::{ImageStatus, Stat};
    pub use crate::stats::StatCat;
    pub use crate::team::Team;
    pub use caf_fabric::{FaultPlan, KillSite};
}

/// Allocate a zero-initialized vector of any [`Pod`] type.
pub fn zeroed_vec<T: Pod>(len: usize) -> Vec<T> {
    caf_fabric::pod::vec_from_bytes(&vec![0u8; len * std::mem::size_of::<T>()])
}

#[cfg(test)]
mod tests {
    #[test]
    fn zeroed_vec_works() {
        let v = super::zeroed_vec::<f64>(5);
        assert_eq!(v, vec![0.0; 5]);
        let w = super::zeroed_vec::<u64>(0);
        assert!(w.is_empty());
    }
}
