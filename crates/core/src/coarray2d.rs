//! Two-dimensional coarrays — the shape Fortran code actually declares
//! (`real :: A(n,m)[*]`). A thin, zero-copy layer over [`Coarray`] that
//! maps rows, columns, and rectangular blocks onto contiguous and strided
//! one-sided accesses.
//!
//! The local tile is **row-major**: rows are contiguous (one put/get),
//! columns are strided [`Section`]s — exactly the access-shape split a
//! CAF compiler produces for `A(i,:)` vs `A(:,j)` sections.

use caf_fabric::Pod;

use crate::coarray::{Coarray, Section};
use crate::image::Image;
use crate::team::Team;

/// A coarray of `rows × cols` elements per image, row-major.
pub struct Coarray2d<T: Pod> {
    inner: Coarray<T>,
    rows: usize,
    cols: usize,
}

impl<T: Pod> Clone for Coarray2d<T> {
    fn clone(&self) -> Self {
        Coarray2d {
            inner: self.inner.clone(),
            rows: self.rows,
            cols: self.cols,
        }
    }
}

impl<T: Pod> std::fmt::Debug for Coarray2d<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Coarray2d")
            .field("rows", &self.rows)
            .field("cols", &self.cols)
            .finish()
    }
}

impl Image {
    /// Collectively allocate a `rows × cols` coarray over `team`.
    pub fn coarray2d_alloc<T: Pod>(&self, team: &Team, rows: usize, cols: usize) -> Coarray2d<T> {
        Coarray2d {
            inner: self.coarray_alloc(team, rows * cols),
            rows,
            cols,
        }
    }

    /// Collectively free a 2-D coarray.
    pub fn coarray2d_free<T: Pod>(&self, team: &Team, ca: Coarray2d<T>) {
        self.coarray_free(team, ca.inner);
    }
}

impl<T: Pod> Coarray2d<T> {
    /// Rows per image.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns per image.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The underlying flat coarray (element `(r, c)` is at `r·cols + c`).
    pub fn flat(&self) -> &Coarray<T> {
        &self.inner
    }

    fn at(&self, r: usize, c: usize) -> usize {
        assert!(
            r < self.rows && c < self.cols,
            "element ({r}, {c}) outside {}×{} tile",
            self.rows,
            self.cols
        );
        r * self.cols + c
    }

    /// Blocking remote read of one element: `A(r, c)[member]`.
    pub fn read_elem(&self, img: &Image, member: usize, r: usize, c: usize) -> T {
        let mut out = crate::zeroed_vec::<T>(1);
        self.inner.read(img, member, self.at(r, c), &mut out);
        out[0]
    }

    /// Blocking remote write of one element.
    pub fn write_elem(&self, img: &Image, member: usize, r: usize, c: usize, v: T) {
        self.inner.write(img, member, self.at(r, c), &[v]);
    }

    /// Blocking remote read of row `r` (`A(r, :)[member]`) — contiguous.
    pub fn read_row(&self, img: &Image, member: usize, r: usize, out: &mut [T]) {
        assert_eq!(out.len(), self.cols, "row buffer length");
        self.inner.read(img, member, self.at(r, 0), out);
    }

    /// Blocking remote write of row `r` — contiguous.
    pub fn write_row(&self, img: &Image, member: usize, r: usize, data: &[T]) {
        assert_eq!(data.len(), self.cols, "row buffer length");
        self.inner.write(img, member, self.at(r, 0), data);
    }

    /// Blocking remote read of column `c` (`A(:, c)[member]`) — a strided
    /// section with stride `cols`.
    pub fn read_col(&self, img: &Image, member: usize, c: usize, out: &mut [T]) {
        assert_eq!(out.len(), self.rows, "column buffer length");
        self.inner.read_section(
            img,
            member,
            Section::new(self.at(0, c), self.rows, self.cols),
            out,
        );
    }

    /// Blocking remote write of column `c` — a strided section.
    pub fn write_col(&self, img: &Image, member: usize, c: usize, data: &[T]) {
        assert_eq!(data.len(), self.rows, "column buffer length");
        self.inner.write_section(
            img,
            member,
            Section::new(self.at(0, c), self.rows, self.cols),
            data,
        );
    }

    /// Blocking remote write of a rectangular block with top-left corner
    /// `(r0, c0)`; `data` is row-major `br × bc`.
    #[allow(clippy::too_many_arguments)] // BLAS-like geometry signature
    pub fn write_block(
        &self,
        img: &Image,
        member: usize,
        r0: usize,
        c0: usize,
        br: usize,
        bc: usize,
        data: &[T],
    ) {
        assert_eq!(data.len(), br * bc, "block buffer length");
        let _ = self.at(r0 + br.saturating_sub(1), c0 + bc.saturating_sub(1));
        for (i, row) in data.chunks(bc).enumerate() {
            self.inner.write(img, member, self.at(r0 + i, c0), row);
        }
    }

    /// Blocking remote read of a rectangular block (row-major `br × bc`).
    #[allow(clippy::too_many_arguments)] // BLAS-like geometry signature
    pub fn read_block(
        &self,
        img: &Image,
        member: usize,
        r0: usize,
        c0: usize,
        br: usize,
        bc: usize,
        out: &mut [T],
    ) {
        assert_eq!(out.len(), br * bc, "block buffer length");
        let _ = self.at(r0 + br.saturating_sub(1), c0 + bc.saturating_sub(1));
        for (i, row) in out.chunks_mut(bc).enumerate() {
            self.inner.read(img, member, self.at(r0 + i, c0), row);
        }
    }

    /// This image's whole tile, row-major.
    pub fn local_tile(&self, img: &Image) -> Vec<T> {
        self.inner.local_vec(img)
    }

    /// Write this image's whole tile, row-major.
    pub fn local_write_tile(&self, img: &Image, data: &[T]) {
        assert_eq!(data.len(), self.rows * self.cols, "tile buffer length");
        self.inner.local_write(img, 0, data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::{CafConfig, CafUniverse, SubstrateKind};

    fn both(n: usize, f: impl Fn(&Image) + Send + Sync) {
        for kind in [SubstrateKind::Mpi, SubstrateKind::Gasnet] {
            CafUniverse::run_with_config(n, CafConfig::on(kind), |img| f(img));
        }
    }

    #[test]
    fn rows_cols_elements_roundtrip() {
        both(2, |img| {
            let w = img.team_world();
            let a: Coarray2d<f64> = img.coarray2d_alloc(&w, 3, 4);
            if img.this_image() == 0 {
                a.write_row(img, 1, 1, &[1.0, 2.0, 3.0, 4.0]);
                a.write_col(img, 1, 2, &[10.0, 20.0, 30.0]);
                a.write_elem(img, 1, 2, 0, 99.0);
            }
            img.sync_all();
            if img.this_image() == 1 {
                let t = a.local_tile(img);
                // Row 0: col 2 overwritten by the column write.
                assert_eq!(t[2], 10.0);
                // Row 1: column write lands after the row write.
                assert_eq!(&t[4..8], &[1.0, 2.0, 20.0, 4.0]);
                // Row 2.
                assert_eq!(t[2 * 4 + 2], 30.0);
                assert_eq!(t[2 * 4], 99.0);
            }
            img.sync_all();
            if img.this_image() == 0 {
                assert_eq!(a.read_elem(img, 1, 1, 1), 2.0);
                let mut col = [0.0f64; 3];
                a.read_col(img, 1, 2, &mut col);
                assert_eq!(col, [10.0, 20.0, 30.0]);
                let mut row = [0.0f64; 4];
                a.read_row(img, 1, 1, &mut row);
                assert_eq!(row, [1.0, 2.0, 20.0, 4.0]);
            }
            img.sync_all();
            img.coarray2d_free(&w, a);
        });
    }

    #[test]
    fn blocks_roundtrip() {
        both(2, |img| {
            let w = img.team_world();
            let a: Coarray2d<u64> = img.coarray2d_alloc(&w, 4, 5);
            if img.this_image() == 0 {
                // 2×3 block at (1, 2).
                a.write_block(img, 1, 1, 2, 2, 3, &[1, 2, 3, 4, 5, 6]);
            }
            img.sync_all();
            if img.this_image() == 1 {
                let t = a.local_tile(img);
                assert_eq!(&t[7..10], &[1, 2, 3]);
                assert_eq!(&t[2 * 5 + 2..2 * 5 + 5], &[4, 5, 6]);
                assert_eq!(t[0], 0);
            }
            img.sync_all();
            if img.this_image() == 0 {
                let mut out = [0u64; 6];
                a.read_block(img, 1, 1, 2, 2, 3, &mut out);
                assert_eq!(out, [1, 2, 3, 4, 5, 6]);
            }
            img.sync_all();
            img.coarray2d_free(&w, a);
        });
    }

    #[test]
    #[should_panic(expected = "image panicked")]
    fn out_of_tile_access_panics() {
        CafUniverse::run(1, |img| {
            let w = img.team_world();
            let a: Coarray2d<u64> = img.coarray2d_alloc(&w, 2, 2);
            let _ = a.read_elem(img, 0, 2, 0);
        });
    }
}
