//! Failed-image status reporting — the Fortran 2018 `STAT_FAILED_IMAGE`
//! surface (DESIGN.md §17).
//!
//! Every blocking operation with a `_stat` variant returns a [`Stat`]
//! instead of hanging (or panicking) when an image in its partner set has
//! failed. The failed set travels with the status so callers can shrink
//! their team ([`crate::Image::team_reform`]) and continue on the
//! survivors. Operations *without* a `_stat` variant panic on a detected
//! failure — they still never hang, but they treat death as fatal.

/// Status of one image as observed through the failure registry
/// (`image_status(i)` in Fortran 2018 terms).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImageStatus {
    /// The image has not been observed to fail.
    Ok,
    /// The image has failed (`STAT_FAILED_IMAGE` would be returned by
    /// operations involving it).
    Failed,
}

/// Outcome of a blocking operation's failure screen — the `stat=`
/// out-parameter of Fortran 2018 image-control statements.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum Stat {
    /// The operation completed normally.
    #[default]
    Ok,
    /// The operation returned early because the listed images (global
    /// ranks, ascending, deduplicated) have failed — Fortran's
    /// `STAT_FAILED_IMAGE`.
    FailedImage(Vec<usize>),
}

impl Stat {
    /// True when the operation completed without observing a failure.
    pub fn is_ok(&self) -> bool {
        matches!(self, Stat::Ok)
    }

    /// The failed images this status reports (empty for [`Stat::Ok`]).
    pub fn failed(&self) -> &[usize] {
        match self {
            Stat::Ok => &[],
            Stat::FailedImage(f) => f,
        }
    }

    /// Fold another failed set into this status (sorted, deduplicated).
    pub(crate) fn merge(&mut self, more: &[usize]) {
        if more.is_empty() {
            return;
        }
        let mut all = std::mem::take(self).into_failed();
        all.extend_from_slice(more);
        all.sort_unstable();
        all.dedup();
        *self = Stat::FailedImage(all);
    }

    fn into_failed(self) -> Vec<usize> {
        match self {
            Stat::Ok => Vec::new(),
            Stat::FailedImage(f) => f,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_ok() {
        let s = Stat::default();
        assert!(s.is_ok());
        assert!(s.failed().is_empty());
    }

    #[test]
    fn merge_sorts_and_dedups() {
        let mut s = Stat::Ok;
        s.merge(&[]);
        assert!(s.is_ok(), "merging nothing stays Ok");
        s.merge(&[3, 1]);
        s.merge(&[2, 3]);
        assert_eq!(s.failed(), &[1, 2, 3]);
        assert!(!s.is_ok());
    }
}
