//! Runtime-level active messages.
//!
//! The CAF runtime needs its own AM layer for events, function shipping,
//! remote-completion puts, and (on the GASNet substrate) hand-rolled
//! collectives. On the MPI substrate these messages travel as `MPI_Isend`s
//! on a private communicator — the paper's §3.2 design, a "near-exact
//! replica of the AM interface in the GASNet core API" built from two-sided
//! MPI. On the GASNet substrate they are genuine GASNet AMs.
//!
//! The wire encoding is a tiny hand-rolled binary format (kind byte +
//! little-endian fields + raw payload); both substrates move opaque bytes.

/// A runtime message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RtMsg {
    /// Post `event_id` once at the receiving image.
    EventNotify {
        /// Collectively agreed event identity.
        event_id: u64,
    },
    /// Execute the shipped function stored in the universe's ship registry
    /// under `slot`; account completion to `finish_id`.
    Ship {
        /// Ship-registry slot holding the closure.
        slot: u64,
        /// Enclosing finish block (0 = none).
        finish_id: u64,
    },
    /// CAF-MPI's §3.3 case 4: a PUT whose remote completion must post an
    /// event. The data travels inside the message; the receiving image
    /// copies it into its own region and posts the event.
    PutWithEvent {
        /// Region the data belongs to (window id / region id).
        region_id: u64,
        /// Byte offset within the receiving image's region.
        offset: u64,
        /// Event to post after the copy (0 = none).
        event_id: u64,
        /// The payload.
        data: Vec<u8>,
    },
    /// One drained aggregation bucket: the `caf-agg` batch wire format
    /// (`caf_agg::encode_batch`), delivered as a single runtime AM and
    /// unpacked record-by-record at the target. Carries the union of its
    /// records' happens-before edges under `token`, and is accounted to
    /// `finish_id` like a shipped function so Yang's termination
    /// detection covers in-flight batches and store-and-forward chains.
    AggBatch {
        /// Happens-before channel token (globally unique per batch).
        token: u64,
        /// Enclosing finish block at the drain point (0 = none).
        finish_id: u64,
        /// `caf_agg::encode_batch` payload.
        data: Vec<u8>,
    },
    /// One fragment of a hand-rolled collective on the GASNet substrate.
    CollPayload {
        /// Team the collective runs on.
        team_id: u64,
        /// Per-team collective sequence number.
        seq: u64,
        /// Algorithm phase within the collective.
        phase: u32,
        /// Sender's team rank.
        src_idx: u32,
        /// Fragment index (payloads above the medium-AM limit are split).
        chunk: u32,
        /// Total number of fragments.
        nchunks: u32,
        /// Fragment bytes.
        data: Vec<u8>,
    },
}

const K_EVENT: u8 = 1;
const K_SHIP: u8 = 2;
const K_PUT_EV: u8 = 3;
const K_COLL: u8 = 4;
const K_AGG: u8 = 5;

fn push_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn push_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

struct Reader<'a>(&'a [u8]);

impl<'a> Reader<'a> {
    fn u64(&mut self) -> u64 {
        let (head, rest) = self.0.split_at(8);
        self.0 = rest;
        u64::from_le_bytes(head.try_into().expect("8 bytes"))
    }
    fn u32(&mut self) -> u32 {
        let (head, rest) = self.0.split_at(4);
        self.0 = rest;
        u32::from_le_bytes(head.try_into().expect("4 bytes"))
    }
    fn rest(self) -> Vec<u8> {
        self.0.to_vec()
    }
}

impl RtMsg {
    /// Serialize to bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(32);
        match self {
            RtMsg::EventNotify { event_id } => {
                buf.push(K_EVENT);
                push_u64(&mut buf, *event_id);
            }
            RtMsg::Ship { slot, finish_id } => {
                buf.push(K_SHIP);
                push_u64(&mut buf, *slot);
                push_u64(&mut buf, *finish_id);
            }
            RtMsg::PutWithEvent {
                region_id,
                offset,
                event_id,
                data,
            } => {
                buf.push(K_PUT_EV);
                push_u64(&mut buf, *region_id);
                push_u64(&mut buf, *offset);
                push_u64(&mut buf, *event_id);
                buf.extend_from_slice(data);
            }
            RtMsg::AggBatch {
                token,
                finish_id,
                data,
            } => {
                buf.push(K_AGG);
                push_u64(&mut buf, *token);
                push_u64(&mut buf, *finish_id);
                buf.extend_from_slice(data);
            }
            RtMsg::CollPayload {
                team_id,
                seq,
                phase,
                src_idx,
                chunk,
                nchunks,
                data,
            } => {
                buf.push(K_COLL);
                push_u64(&mut buf, *team_id);
                push_u64(&mut buf, *seq);
                push_u32(&mut buf, *phase);
                push_u32(&mut buf, *src_idx);
                push_u32(&mut buf, *chunk);
                push_u32(&mut buf, *nchunks);
                buf.extend_from_slice(data);
            }
        }
        buf
    }

    /// Deserialize from bytes.
    ///
    /// # Panics
    ///
    /// Panics on a malformed message — runtime traffic is internal, so
    /// corruption is a bug, not an input condition.
    pub fn decode(bytes: &[u8]) -> RtMsg {
        let (kind, rest) = bytes.split_first().expect("empty runtime message");
        let mut r = Reader(rest);
        match *kind {
            K_EVENT => RtMsg::EventNotify { event_id: r.u64() },
            K_SHIP => RtMsg::Ship {
                slot: r.u64(),
                finish_id: r.u64(),
            },
            K_PUT_EV => RtMsg::PutWithEvent {
                region_id: r.u64(),
                offset: r.u64(),
                event_id: r.u64(),
                data: r.rest(),
            },
            K_AGG => RtMsg::AggBatch {
                token: r.u64(),
                finish_id: r.u64(),
                data: r.rest(),
            },
            K_COLL => RtMsg::CollPayload {
                team_id: r.u64(),
                seq: r.u64(),
                phase: r.u32(),
                src_idx: r.u32(),
                chunk: r.u32(),
                nchunks: r.u32(),
                data: r.rest(),
            },
            k => panic!("unknown runtime message kind {k}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(m: RtMsg) {
        assert_eq!(RtMsg::decode(&m.encode()), m);
    }

    #[test]
    fn all_variants_roundtrip() {
        roundtrip(RtMsg::EventNotify { event_id: 42 });
        roundtrip(RtMsg::Ship {
            slot: 7,
            finish_id: u64::MAX,
        });
        roundtrip(RtMsg::PutWithEvent {
            region_id: 1,
            offset: 1024,
            event_id: 0,
            data: vec![1, 2, 3, 4, 5],
        });
        roundtrip(RtMsg::AggBatch {
            token: 0xA66,
            finish_id: 12,
            data: vec![9, 8, 7],
        });
        roundtrip(RtMsg::CollPayload {
            team_id: 9,
            seq: 3,
            phase: 2,
            src_idx: 5,
            chunk: 1,
            nchunks: 4,
            data: vec![0xff; 100],
        });
    }

    #[test]
    fn empty_payloads_roundtrip() {
        roundtrip(RtMsg::PutWithEvent {
            region_id: 0,
            offset: 0,
            event_id: 0,
            data: vec![],
        });
        roundtrip(RtMsg::CollPayload {
            team_id: 0,
            seq: 0,
            phase: 0,
            src_idx: 0,
            chunk: 0,
            nchunks: 1,
            data: vec![],
        });
    }

    #[test]
    #[should_panic(expected = "unknown runtime message kind")]
    fn decode_rejects_garbage() {
        RtMsg::decode(&[200, 0, 0]);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn event_roundtrips(id in any::<u64>()) {
                let m = RtMsg::EventNotify { event_id: id };
                prop_assert_eq!(RtMsg::decode(&m.encode()), m);
            }

            #[test]
            fn ship_roundtrips(slot in any::<u64>(), fid in any::<u64>()) {
                let m = RtMsg::Ship { slot, finish_id: fid };
                prop_assert_eq!(RtMsg::decode(&m.encode()), m);
            }

            #[test]
            fn put_with_event_roundtrips(
                region in any::<u64>(),
                offset in any::<u64>(),
                ev in any::<u64>(),
                data in proptest::collection::vec(any::<u8>(), 0..256),
            ) {
                let m = RtMsg::PutWithEvent {
                    region_id: region,
                    offset,
                    event_id: ev,
                    data,
                };
                prop_assert_eq!(RtMsg::decode(&m.encode()), m);
            }

            #[test]
            fn agg_batch_roundtrips(
                token in any::<u64>(),
                fid in any::<u64>(),
                data in proptest::collection::vec(any::<u8>(), 0..512),
            ) {
                let m = RtMsg::AggBatch { token, finish_id: fid, data };
                prop_assert_eq!(RtMsg::decode(&m.encode()), m);
            }

            #[test]
            fn coll_payload_roundtrips(
                team in any::<u64>(),
                seq in any::<u64>(),
                phase in any::<u32>(),
                src in any::<u32>(),
                chunk in any::<u32>(),
                nchunks in any::<u32>(),
                data in proptest::collection::vec(any::<u8>(), 0..256),
            ) {
                let m = RtMsg::CollPayload {
                    team_id: team,
                    seq,
                    phase,
                    src_idx: src,
                    chunk,
                    nchunks,
                    data,
                };
                prop_assert_eq!(RtMsg::decode(&m.encode()), m);
            }
        }
    }
}
