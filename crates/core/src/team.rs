//! Teams — CAF 2.0's first-class process groups (paper §2.1).
//!
//! A team serves three purposes: a domain for coarray allocation, a rank
//! namespace, and an isolated collective/synchronization scope. On the MPI
//! substrate a team *is* a communicator; on the GASNet substrate it is a
//! runtime-managed member list with its own collective sequence space
//! (GASNet has no communicator concept — the runtime builds one).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use caf_mpisim::Comm;

/// A CAF team.
#[derive(Debug, Clone)]
pub struct Team {
    pub(crate) inner: TeamInner,
}

#[derive(Debug, Clone)]
pub(crate) enum TeamInner {
    /// MPI substrate: the team is a communicator.
    Mpi(Comm),
    /// GASNet substrate: runtime-managed group.
    Gasnet(GTeam),
}

#[derive(Debug, Clone)]
pub(crate) struct GTeam {
    pub id: u64,
    /// Member global ranks in team order.
    pub members: Arc<[usize]>,
    pub my_idx: usize,
    pub state: Arc<GTeamState>,
}

#[derive(Debug, Default)]
pub(crate) struct GTeamState {
    /// Collective sequence number (advances identically on all members).
    pub coll_seq: AtomicU64,
}

impl GTeam {
    pub(crate) fn next_seq(&self) -> u64 {
        self.state.coll_seq.fetch_add(1, Ordering::Relaxed)
    }
}

impl Team {
    /// This image's rank within the team.
    pub fn rank(&self) -> usize {
        match &self.inner {
            TeamInner::Mpi(c) => c.rank(),
            TeamInner::Gasnet(t) => t.my_idx,
        }
    }

    /// Number of images in the team.
    pub fn size(&self) -> usize {
        match &self.inner {
            TeamInner::Mpi(c) => c.size(),
            TeamInner::Gasnet(t) => t.members.len(),
        }
    }

    /// Stable team identity (context id).
    pub fn id(&self) -> u64 {
        match &self.inner {
            TeamInner::Mpi(c) => c.id(),
            TeamInner::Gasnet(t) => t.id,
        }
    }

    /// Global (world) rank of team member `idx`.
    pub fn global_rank(&self, idx: usize) -> usize {
        match &self.inner {
            TeamInner::Mpi(c) => c.global_rank(idx),
            TeamInner::Gasnet(t) => t.members[idx],
        }
    }

    /// Member global ranks in team order.
    pub fn members(&self) -> Vec<usize> {
        match &self.inner {
            TeamInner::Mpi(c) => c.members().to_vec(),
            TeamInner::Gasnet(t) => t.members.to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gasnet_team_accessors() {
        let t = Team {
            inner: TeamInner::Gasnet(GTeam {
                id: 9,
                members: vec![4, 6, 8].into(),
                my_idx: 1,
                state: Arc::new(GTeamState::default()),
            }),
        };
        assert_eq!(t.rank(), 1);
        assert_eq!(t.size(), 3);
        assert_eq!(t.id(), 9);
        assert_eq!(t.global_rank(2), 8);
        assert_eq!(t.members(), vec![4, 6, 8]);
    }

    #[test]
    fn gteam_seq_advances() {
        let t = GTeam {
            id: 0,
            members: vec![0].into(),
            my_idx: 0,
            state: Arc::new(GTeamState::default()),
        };
        assert_eq!(t.next_seq(), 0);
        assert_eq!(t.next_seq(), 1);
        // Clones share the sequence space.
        let u = t.clone();
        assert_eq!(u.next_seq(), 2);
        assert_eq!(t.next_seq(), 3);
    }
}
