//! Team collectives.
//!
//! On the MPI substrate these delegate to the MPI library's collectives —
//! "well-optimized over the years by different MPI implementations"
//! (paper §5), which is where CAF-MPI's FFT advantage comes from.
//!
//! On the GASNet substrate the runtime must hand-roll every collective from
//! active messages, because the GASNet core API has none (paper §4.2). The
//! hand-rolled versions here use reasonable but unspecialized algorithms,
//! and their payloads are chunked to the medium-AM limit — both faithful
//! sources of the baseline's collective slowness.

use caf_fabric::pod::{as_bytes, vec_from_bytes};
use caf_fabric::Pod;
use caf_gasnetsim::AM_MAX_MEDIUM;
use caf_mpisim::Scalar;

use crate::backend::Backend;
use crate::image::Image;
use crate::rtmsg::RtMsg;
use crate::stats::StatCat;
use crate::team::{GTeam, GTeamState, Team, TeamInner};

/// Payload bytes per hand-rolled-collective fragment (medium-AM limit
/// minus headroom for the runtime-message header).
const GCOLL_CHUNK: usize = AM_MAX_MEDIUM - 64;

impl Image {
    /// Bracket a collective's body with the race detector's round
    /// bookkeeping: members entering round `n` of a team have their entry
    /// clocks joined by every member at exit. The GASNet collectives are
    /// hand-rolled from AMs the detector cannot see, so the edge must be
    /// recorded here, at the portable layer.
    fn hb_collective<R>(&self, team: &Team, f: impl FnOnce() -> R) -> R {
        #[cfg(not(feature = "check"))]
        let _ = team;
        #[cfg(feature = "check")]
        caf_check::hooks::hb_coll_enter(self.this_image(), team.id());
        let out = f();
        #[cfg(feature = "check")]
        caf_check::hooks::hb_coll_exit(self.this_image(), team.id(), team.size());
        out
    }

    /// Team barrier (`sync team` / `sync all` on the world team).
    pub fn barrier(&self, team: &Team) {
        self.hb_collective(team, || {
            self.stats().timed_d(StatCat::Barrier, None, 0, None, Some(team.id()), || {
                match (&self.backend, &team.inner) {
                    (Backend::Mpi(b), TeamInner::Mpi(comm)) => {
                        b.mpi.barrier(comm).expect("barrier");
                    }
                    (Backend::Gasnet(_), TeamInner::Gasnet(t)) => self.gbarrier(t),
                    _ => panic!("team does not belong to this substrate"),
                }
            });
        });
    }

    /// Convenience: barrier over `TEAM_WORLD` (`sync all`).
    pub fn sync_all(&self) {
        let w = self.team_world();
        self.barrier(&w);
    }

    /// As [`Image::barrier`], with a failure screen: returns
    /// [`crate::Stat::FailedImage`] (with the failed members) instead of
    /// hanging or panicking when a team member has died mid-barrier.
    pub fn barrier_stat(&self, team: &Team) -> crate::stat::Stat {
        self.hb_collective(team, || {
            self.stats().timed_d(StatCat::Barrier, None, 0, None, Some(team.id()), || {
                match (&self.backend, &team.inner) {
                    (Backend::Mpi(b), TeamInner::Mpi(comm)) => match b.mpi.barrier(comm) {
                        Ok(()) => crate::stat::Stat::Ok,
                        Err(e) => self.stat_failed(crate::image::failed_of_err(e)),
                    },
                    (Backend::Gasnet(_), TeamInner::Gasnet(t)) => match self.gbarrier_stat(t) {
                        Ok(()) => crate::stat::Stat::Ok,
                        Err(failed) => self.stat_failed(failed),
                    },
                    _ => panic!("team does not belong to this substrate"),
                }
            })
        })
    }

    /// `sync all` with a failure screen (`sync all (stat=...)`).
    pub fn sync_all_stat(&self) -> crate::stat::Stat {
        let w = self.team_world();
        self.barrier_stat(&w)
    }

    /// Team broadcast from `root` (team rank).
    pub fn broadcast<T: Pod>(&self, team: &Team, root: usize, data: &mut Vec<T>) {
        self.hb_collective(team, || {
            self.stats()
                .timed_d(StatCat::Reduction, None, 0, None, Some(team.id()), || match (&self.backend, &team.inner) {
                (Backend::Mpi(b), TeamInner::Mpi(comm)) => {
                    b.mpi.bcast(comm, root, data).expect("bcast");
                }
                (Backend::Gasnet(_), TeamInner::Gasnet(t)) => self.gbcast(t, root, data),
                _ => panic!("team does not belong to this substrate"),
            });
        });
    }

    /// Team reduction to `root` with a commutative-associative combiner.
    pub fn reduce<T: Pod>(
        &self,
        team: &Team,
        root: usize,
        data: &[T],
        f: impl Fn(T, T) -> T,
    ) -> Option<Vec<T>> {
        self.hb_collective(team, || {
            self.stats()
                .timed_d(StatCat::Reduction, None, 0, None, Some(team.id()), || match (&self.backend, &team.inner) {
                    (Backend::Mpi(b), TeamInner::Mpi(comm)) => {
                        b.mpi.reduce(comm, root, data, f).expect("reduce")
                    }
                    (Backend::Gasnet(_), TeamInner::Gasnet(t)) => self.greduce(t, root, data, f),
                    _ => panic!("team does not belong to this substrate"),
                })
        })
    }

    /// Team allreduce.
    pub fn allreduce<T: Pod>(&self, team: &Team, data: &[T], f: impl Fn(T, T) -> T) -> Vec<T> {
        self.hb_collective(team, || {
            self.stats()
                .timed_d(StatCat::Reduction, None, 0, None, Some(team.id()), || match (&self.backend, &team.inner) {
                (Backend::Mpi(b), TeamInner::Mpi(comm)) => {
                    b.mpi.allreduce(comm, data, f).expect("allreduce")
                }
                (Backend::Gasnet(_), TeamInner::Gasnet(t)) => {
                    // Hand-rolled: reduce to team rank 0, then broadcast —
                    // correct, but without the recursive-doubling tuning of
                    // the MPI library.
                    let reduced = self.greduce(t, 0, data, &f);
                    let mut out = reduced.unwrap_or_else(|| data.to_vec());
                    self.gbcast(t, 0, &mut out);
                    out
                }
                _ => panic!("team does not belong to this substrate"),
            })
        })
    }

    /// As [`Image::allreduce`], with a failure screen: `Err` carries
    /// [`crate::Stat::FailedImage`] with the failed members. The
    /// termination-detection loop of [`Image::finish_stat`] is built on
    /// this — the paper's counter rounds double as the failure-detection
    /// heartbeat.
    pub fn allreduce_stat<T: Pod>(
        &self,
        team: &Team,
        data: &[T],
        f: impl Fn(T, T) -> T,
    ) -> Result<Vec<T>, crate::stat::Stat> {
        self.hb_collective(team, || {
            self.stats()
                .timed_d(StatCat::Reduction, None, 0, None, Some(team.id()), || {
                    match (&self.backend, &team.inner) {
                        (Backend::Mpi(b), TeamInner::Mpi(comm)) => {
                            b.mpi.allreduce(comm, data, f).map_err(|e| {
                                self.stat_failed(crate::image::failed_of_err(e))
                            })
                        }
                        (Backend::Gasnet(_), TeamInner::Gasnet(t)) => (|| {
                            let reduced = self.greduce_stat(t, 0, data, &f)?;
                            let mut out = reduced.unwrap_or_else(|| data.to_vec());
                            self.gbcast_stat(t, 0, &mut out)?;
                            Ok(out)
                        })()
                        .map_err(|failed| self.stat_failed(failed)),
                        _ => panic!("team does not belong to this substrate"),
                    }
                })
        })
    }

    /// Team allgather of equal-length contributions, concatenated in team
    /// order.
    pub fn allgather<T: Pod>(&self, team: &Team, data: &[T]) -> Vec<T> {
        self.hb_collective(team, || {
            self.stats()
                .timed_d(StatCat::Reduction, None, 0, None, Some(team.id()), || match (&self.backend, &team.inner) {
                    (Backend::Mpi(b), TeamInner::Mpi(comm)) => {
                        b.mpi.allgather(comm, data).expect("allgather")
                    }
                    (Backend::Gasnet(_), TeamInner::Gasnet(t)) => self.gallgather(t, data),
                    _ => panic!("team does not belong to this substrate"),
                })
        })
    }

    /// Variable-length team allgather: contributions may differ in length
    /// per image; the result concatenates them in team order.
    pub fn allgatherv<T: Pod>(&self, team: &Team, data: &[T]) -> Vec<T> {
        self.hb_collective(team, || {
            self.stats()
                .timed_d(StatCat::Reduction, None, 0, None, Some(team.id()), || match (&self.backend, &team.inner) {
                (Backend::Mpi(b), TeamInner::Mpi(comm)) => {
                    b.mpi.allgatherv(comm, data).expect("allgatherv")
                }
                (Backend::Gasnet(_), TeamInner::Gasnet(t)) => {
                    // Hand-rolled: exchange counts, then linear exchange of
                    // the ragged payloads.
                    let counts: Vec<usize> = self
                        .gallgather(t, &[data.len() as u64])
                        .into_iter()
                        .map(|c| c as usize)
                        .collect();
                    let seq = t.next_seq();
                    let n = t.members.len();
                    let me = t.my_idx;
                    for d in 0..n {
                        if d != me {
                            self.gcoll_send(t, d, seq, 1, as_bytes(data));
                        }
                    }
                    let mut out = Vec::new();
                    for (s, &count) in counts.iter().enumerate() {
                        if s == me {
                            out.extend_from_slice(data);
                        } else {
                            let part: Vec<T> = vec_from_bytes(&self.gcoll_recv(t, s, seq, 1));
                            assert_eq!(part.len(), count, "allgatherv count");
                            out.extend_from_slice(&part);
                        }
                    }
                    out
                }
                _ => panic!("team does not belong to this substrate"),
            })
        })
    }

    /// Team alltoall: `data` holds `team.size()` blocks of `block` elements
    /// in destination order; the result holds blocks in source order.
    ///
    /// This is the FFT transpose primitive. On CAF-MPI it is
    /// `MPI_ALLTOALL`; on CAF-GASNet it is hand-rolled from AMs (paper
    /// §4.2: "CAF-GASNet implements alltoall with GASNet's PUT, GET, and
    /// Active Messages... not as well tuned as MPI_ALLTOALL").
    pub fn alltoall<T: Pod>(&self, team: &Team, data: &[T], block: usize) -> Vec<T> {
        self.hb_collective(team, || {
            self.stats()
                .timed_d(StatCat::Alltoall, None, 0, None, Some(team.id()), || match (&self.backend, &team.inner) {
                    (Backend::Mpi(b), TeamInner::Mpi(comm)) => {
                        b.mpi.alltoall(comm, data, block).expect("alltoall")
                    }
                    (Backend::Gasnet(_), TeamInner::Gasnet(t)) => self.galltoall(t, data, block),
                    _ => panic!("team does not belong to this substrate"),
                })
        })
    }

    /// Fortran 2008 `sync images`: pairwise synchronization with each
    /// listed team member. Each partner must execute a matching
    /// `sync_images` naming this image. Unlike a barrier, unlisted images
    /// are not involved.
    ///
    /// Implemented over events with per-source identities, so successive
    /// `sync_images` calls with overlapping partner sets cannot steal one
    /// another's notifications out of order beyond CAF's counting
    /// semantics.
    pub fn sync_images(&self, team: &Team, partners: &[usize]) {
        use crate::event::Event;
        // A reserved, globally agreed event id per source image.
        let sync_ev = |global: usize| Event {
            id: crate::image::derive_token(0x5A11C0DE, global as u64 + 1, 0x5A),
        };
        let me = self.this_image();
        for &p in partners {
            self.event_notify(team, &sync_ev(me), p);
        }
        for &p in partners {
            self.event_wait(&sync_ev(team.global_rank(p)));
        }
    }

    /// Fortran 2008 `co_sum`: elementwise sum across the team, replacing
    /// `data` on every image.
    pub fn co_sum<T: Pod + Scalar>(&self, team: &Team, data: &mut [T]) {
        let out = self.allreduce(team, data, |a, b| a.add(b));
        data.copy_from_slice(&out);
    }

    /// Fortran 2008 `co_max`.
    pub fn co_max<T: Pod + Scalar>(&self, team: &Team, data: &mut [T]) {
        let out = self.allreduce(team, data, |a, b| a.max_of(b));
        data.copy_from_slice(&out);
    }

    /// Fortran 2008 `co_min`.
    pub fn co_min<T: Pod + Scalar>(&self, team: &Team, data: &mut [T]) {
        let out = self.allreduce(team, data, |a, b| a.min_of(b));
        data.copy_from_slice(&out);
    }

    /// Fortran 2008 `co_broadcast`.
    pub fn co_broadcast<T: Pod>(&self, team: &Team, root: usize, data: &mut Vec<T>) {
        self.broadcast(team, root, data);
    }

    /// Split `team` by color, ordering each part by `(key, rank)` —
    /// CAF 2.0's `team_split`.
    pub fn team_split(&self, team: &Team, color: u64, key: i64) -> Team {
        self.hb_collective(team, || match (&self.backend, &team.inner) {
            (Backend::Mpi(b), TeamInner::Mpi(comm)) => Team {
                inner: TeamInner::Mpi(b.mpi.comm_split(comm, color, key).expect("team_split")),
            },
            (Backend::Gasnet(_), TeamInner::Gasnet(t)) => {
                let me = t.my_idx;
                let triples = self.gallgather(t, &[[color, key as u64, me as u64]]);
                let mut mine: Vec<(i64, usize)> = triples
                    .iter()
                    .filter(|x| x[0] == color)
                    .map(|x| (x[1] as i64, x[2] as usize))
                    .collect();
                mine.sort_unstable();
                let members: Vec<usize> = mine.iter().map(|&(_, idx)| t.members[idx]).collect();
                let my_idx = mine
                    .iter()
                    .position(|&(_, idx)| idx == me)
                    .expect("self in own color group");
                let token = self.next_team_token(team, 0x51);
                let id = crate::image::derive_token(token, color.wrapping_add(1), 0x52);
                Team {
                    inner: TeamInner::Gasnet(GTeam {
                        id,
                        members: members.into(),
                        my_idx,
                        state: std::sync::Arc::new(GTeamState::default()),
                    }),
                }
            }
            _ => panic!("team does not belong to this substrate"),
        })
    }

    /// Shrink `team` to its surviving members — the self-healing analog of
    /// ULFM's `MPI_Comm_shrink` (DESIGN.md §17). Every survivor derives
    /// the *same* child team identity from the parent id and the excluded
    /// set without communication, then the survivors agree with a barrier
    /// on the shrunken team; a failure detected *during* that barrier
    /// restarts the shrink with the enlarged failed set, so the reform
    /// converges even when images keep dying under it (the failed set only
    /// grows). Team-relative ranks are renumbered densely in the parent's
    /// member order.
    ///
    /// Returns the new team and a [`crate::Stat`] reporting every failed
    /// member that was dropped ([`crate::Stat::Ok`] if the team was
    /// already whole).
    ///
    /// # Panics
    ///
    /// Panics if the calling image is itself marked failed (a dead image
    /// cannot reform anything).
    pub fn team_reform(&self, team: &Team) -> (Team, crate::stat::Stat) {
        let mut stat = crate::stat::Stat::Ok;
        loop {
            let failed_in_team: Vec<usize> = {
                let fault = self.backend.fault();
                team.members()
                    .into_iter()
                    .filter(|&r| fault.is_failed(r))
                    .collect()
            };
            stat.merge(&failed_in_team);
            let new_team = match (&self.backend, &team.inner) {
                (Backend::Mpi(b), TeamInner::Mpi(comm)) => Team {
                    inner: TeamInner::Mpi(b.mpi.comm_shrink(comm, &failed_in_team)),
                },
                (Backend::Gasnet(_), TeamInner::Gasnet(t)) => {
                    let members: Vec<usize> = t
                        .members
                        .iter()
                        .copied()
                        .filter(|r| !failed_in_team.contains(r))
                        .collect();
                    let my_idx = members
                        .iter()
                        .position(|&g| g == self.this_image())
                        .expect("team_reform caller must be a survivor");
                    // Deterministic child identity: chain the excluded set
                    // into the parent id so every survivor lands on the
                    // same team without exchanging a byte.
                    let mut h = 0xFA_u64;
                    for &r in &failed_in_team {
                        h = crate::image::derive_token(h, r as u64 + 1, 0xFA);
                    }
                    let id = crate::image::derive_token(t.id, h, 0xFA);
                    Team {
                        inner: TeamInner::Gasnet(GTeam {
                            id,
                            members: members.into(),
                            my_idx,
                            state: std::sync::Arc::new(GTeamState::default()),
                        }),
                    }
                }
                _ => panic!("team does not belong to this substrate"),
            };
            // Agreement round: a barrier over the candidate team. If it
            // reports new deaths, fold them in and re-shrink — survivors
            // whose snapshots disagreed converge here, because a stale
            // candidate still contains a failed member and its barrier
            // cannot succeed.
            match self.barrier_stat(&new_team) {
                s if s.is_ok() => return (new_team, stat),
                s => stat.merge(s.failed()),
            }
        }
    }

    // ----- hand-rolled GASNet collectives ------------------------------

    fn gcoll_send(&self, t: &GTeam, dest_idx: usize, seq: u64, phase: u32, bytes: &[u8]) {
        let nchunks = bytes.len().div_ceil(GCOLL_CHUNK).max(1) as u32;
        for (i, chunk) in bytes
            .chunks(GCOLL_CHUNK)
            .chain(std::iter::repeat_n(&[][..], usize::from(bytes.is_empty())))
            .enumerate()
        {
            self.backend.send_rtmsg(
                t.members[dest_idx],
                &RtMsg::CollPayload {
                    team_id: t.id,
                    seq,
                    phase,
                    src_idx: t.my_idx as u32,
                    chunk: i as u32,
                    nchunks,
                    data: chunk.to_vec(),
                },
            );
        }
    }

    fn gcoll_recv(&self, t: &GTeam, src_idx: usize, seq: u64, phase: u32) -> Vec<u8> {
        self.gcoll_recv_stat(t, src_idx, seq, phase)
            .unwrap_or_else(|failed| panic!("collective: image(s) {failed:?} failed"))
    }

    /// Fallible fragment wait: watches the whole team, so a death anywhere
    /// in it — not just the direct source — unblocks the receive (the
    /// source itself may be stalled on the dead member). A failure
    /// abandons the partially received collective; its stale fragments
    /// stay in the stash, harmlessly keyed by a sequence number no retry
    /// reuses.
    fn gcoll_recv_stat(
        &self,
        t: &GTeam,
        src_idx: usize,
        seq: u64,
        phase: u32,
    ) -> Result<Vec<u8>, Vec<usize>> {
        let mut parts: Vec<Option<Vec<u8>>> = Vec::new();
        let mut have = 0usize;
        let mut want = usize::MAX;
        loop {
            // Scan the stash for matching fragments.
            {
                let mut stash = self.coll_stash.borrow_mut();
                let mut i = 0;
                while i < stash.len() {
                    let matched = matches!(
                        &stash[i],
                        RtMsg::CollPayload {
                            team_id,
                            seq: s,
                            phase: p,
                            src_idx: si,
                            ..
                        } if *team_id == t.id && *s == seq && *p == phase
                            && *si as usize == src_idx
                    );
                    if matched {
                        if let RtMsg::CollPayload {
                            chunk,
                            nchunks,
                            data,
                            ..
                        } = stash.swap_remove(i)
                        {
                            want = nchunks as usize;
                            if parts.len() < want {
                                parts.resize(want, None);
                            }
                            if parts[chunk as usize].replace(data).is_none() {
                                have += 1;
                            }
                        }
                    } else {
                        i += 1;
                    }
                }
            }
            if have == want {
                let mut out = Vec::new();
                for p in parts.into_iter().flatten() {
                    out.extend_from_slice(&p);
                }
                return Ok(out);
            }
            // Need more: block for the next runtime message, screening the
            // team for failures.
            let msg = self.backend.recv_rtmsg_blocking_stat(&t.members)?;
            self.handle_msg(msg);
        }
    }

    fn gbarrier(&self, t: &GTeam) {
        self.gbarrier_stat(t)
            .unwrap_or_else(|failed| panic!("barrier: image(s) {failed:?} failed"));
    }

    fn gbarrier_stat(&self, t: &GTeam) -> Result<(), Vec<usize>> {
        let n = t.members.len();
        if n == 1 {
            return Ok(());
        }
        let seq = t.next_seq();
        let me = t.my_idx;
        let mut phase = 0u32;
        let mut dist = 1usize;
        while dist < n {
            self.gcoll_send(t, (me + dist) % n, seq, phase, &[]);
            let _ = self.gcoll_recv_stat(t, (me + n - dist) % n, seq, phase)?;
            phase += 1;
            dist <<= 1;
        }
        Ok(())
    }

    fn gbcast<T: Pod>(&self, t: &GTeam, root: usize, data: &mut Vec<T>) {
        self.gbcast_stat(t, root, data)
            .unwrap_or_else(|failed| panic!("bcast: image(s) {failed:?} failed"));
    }

    fn gbcast_stat<T: Pod>(
        &self,
        t: &GTeam,
        root: usize,
        data: &mut Vec<T>,
    ) -> Result<(), Vec<usize>> {
        let n = t.members.len();
        if n == 1 {
            return Ok(());
        }
        let seq = t.next_seq();
        let vrank = (t.my_idx + n - root) % n;
        let unv = |v: usize| (v + root) % n;
        let mut mask = 1usize;
        while mask < n {
            if vrank & mask != 0 {
                let bytes = self.gcoll_recv_stat(t, unv(vrank - mask), seq, 0)?;
                *data = vec_from_bytes(&bytes);
                break;
            }
            mask <<= 1;
        }
        mask >>= 1;
        while mask > 0 {
            if vrank & mask == 0 && vrank + mask < n {
                self.gcoll_send(t, unv(vrank + mask), seq, 0, as_bytes(data));
            }
            mask >>= 1;
        }
        Ok(())
    }

    fn greduce<T: Pod>(
        &self,
        t: &GTeam,
        root: usize,
        data: &[T],
        f: impl Fn(T, T) -> T,
    ) -> Option<Vec<T>> {
        self.greduce_stat(t, root, data, f)
            .unwrap_or_else(|failed| panic!("reduce: image(s) {failed:?} failed"))
    }

    fn greduce_stat<T: Pod>(
        &self,
        t: &GTeam,
        root: usize,
        data: &[T],
        f: impl Fn(T, T) -> T,
    ) -> Result<Option<Vec<T>>, Vec<usize>> {
        let n = t.members.len();
        let mut acc = data.to_vec();
        if n == 1 {
            return Ok(Some(acc));
        }
        let seq = t.next_seq();
        let vrank = (t.my_idx + n - root) % n;
        let unv = |v: usize| (v + root) % n;
        let mut mask = 1usize;
        while mask < n {
            if vrank & mask == 0 {
                let src = vrank | mask;
                if src < n {
                    let part: Vec<T> =
                        vec_from_bytes(&self.gcoll_recv_stat(t, unv(src), seq, 0)?);
                    for (a, s) in acc.iter_mut().zip(&part) {
                        *a = f(*a, *s);
                    }
                }
            } else {
                self.gcoll_send(t, unv(vrank & !mask), seq, 0, as_bytes(&acc));
                break;
            }
            mask <<= 1;
        }
        Ok((t.my_idx == root).then_some(acc))
    }

    fn gallgather<T: Pod>(&self, t: &GTeam, data: &[T]) -> Vec<T> {
        let n = t.members.len();
        let len = data.len();
        let mut out = vec![data[0]; len * n];
        out[t.my_idx * len..(t.my_idx + 1) * len].copy_from_slice(data);
        if n == 1 {
            return out;
        }
        let seq = t.next_seq();
        // Linear exchange: everyone sends to everyone (the unspecialized
        // hand-rolled shape).
        for d in 0..n {
            if d != t.my_idx {
                self.gcoll_send(t, d, seq, 0, as_bytes(data));
            }
        }
        for s in 0..n {
            if s != t.my_idx {
                let bytes = self.gcoll_recv(t, s, seq, 0);
                let part: Vec<T> = vec_from_bytes(&bytes);
                out[s * len..(s + 1) * len].copy_from_slice(&part);
            }
        }
        out
    }

    fn galltoall<T: Pod>(&self, t: &GTeam, data: &[T], block: usize) -> Vec<T> {
        let n = t.members.len();
        assert_eq!(data.len(), n * block, "alltoall buffer size mismatch");
        let me = t.my_idx;
        let mut out = vec![data[0]; n * block];
        out[me * block..(me + 1) * block].copy_from_slice(&data[me * block..(me + 1) * block]);
        if n == 1 {
            return out;
        }
        let seq = t.next_seq();
        for d in 0..n {
            if d != me {
                self.gcoll_send(t, d, seq, 0, as_bytes(&data[d * block..(d + 1) * block]));
            }
        }
        for s in 0..n {
            if s != me {
                let bytes = self.gcoll_recv(t, s, seq, 0);
                let part: Vec<T> = vec_from_bytes(&bytes);
                out[s * block..(s + 1) * block].copy_from_slice(&part);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::image::{CafConfig, CafUniverse, SubstrateKind};

    fn both_substrates(n: usize, f: impl Fn(&crate::image::Image) + Send + Sync) {
        for kind in [SubstrateKind::Mpi, SubstrateKind::Gasnet] {
            CafUniverse::run_with_config(n, CafConfig::on(kind), |img| f(img));
        }
    }

    #[test]
    fn barrier_on_both_substrates() {
        both_substrates(5, |img| {
            for _ in 0..3 {
                img.sync_all();
            }
        });
    }

    #[test]
    fn broadcast_on_both_substrates() {
        both_substrates(6, |img| {
            let w = img.team_world();
            let mut data = if img.this_image() == 2 {
                vec![3.5f64; 10]
            } else {
                Vec::new()
            };
            img.broadcast(&w, 2, &mut data);
            assert_eq!(data, vec![3.5f64; 10]);
        });
    }

    #[test]
    fn allreduce_on_both_substrates() {
        both_substrates(7, |img| {
            let w = img.team_world();
            let s = img.allreduce(&w, &[img.this_image() as u64, 1], |a, b| a + b);
            assert_eq!(s, vec![21, 7]);
        });
    }

    #[test]
    fn reduce_on_both_substrates() {
        both_substrates(4, |img| {
            let w = img.team_world();
            let r = img.reduce(&w, 1, &[img.this_image() as i64], |a, b| a.max(b));
            if img.this_image() == 1 {
                assert_eq!(r, Some(vec![3]));
            } else {
                assert!(r.is_none());
            }
        });
    }

    #[test]
    fn allgather_on_both_substrates() {
        both_substrates(4, |img| {
            let w = img.team_world();
            let all = img.allgather(&w, &[img.this_image() as u32 * 7]);
            assert_eq!(all, vec![0, 7, 14, 21]);
        });
    }

    #[test]
    fn allgatherv_on_both_substrates() {
        both_substrates(4, |img| {
            let w = img.team_world();
            let mine = vec![img.this_image() as u64 * 5; img.this_image()];
            let all = img.allgatherv(&w, &mine);
            let mut expect = Vec::new();
            for r in 0..4u64 {
                expect.extend(std::iter::repeat_n(r * 5, r as usize));
            }
            assert_eq!(all, expect);
        });
    }

    #[test]
    fn alltoall_on_both_substrates() {
        both_substrates(4, |img| {
            let w = img.team_world();
            let me = img.this_image();
            let send: Vec<u64> = (0..4).map(|d| (me * 10 + d) as u64).collect();
            let recv = img.alltoall(&w, &send, 1);
            let expect: Vec<u64> = (0..4).map(|s| (s * 10 + me) as u64).collect();
            assert_eq!(recv, expect);
        });
    }

    #[test]
    fn large_payload_alltoall_chunks_on_gasnet() {
        // Blocks well above the medium-AM limit force fragmentation.
        CafUniverse::run_with_config(
            3,
            CafConfig::on(SubstrateKind::Gasnet),
            |img| {
                let w = img.team_world();
                let me = img.this_image();
                let block = 3000; // 24 KB per block in f64
                let send: Vec<f64> = (0..3 * block)
                    .map(|i| (me * 1_000_000 + i) as f64)
                    .collect();
                let recv = img.alltoall(&w, &send, block);
                for s in 0..3usize {
                    for i in 0..block {
                        assert_eq!(
                            recv[s * block + i],
                            (s * 1_000_000 + me * block + i) as f64
                        );
                    }
                }
            },
        );
    }

    #[test]
    fn team_split_on_both_substrates() {
        both_substrates(8, |img| {
            let w = img.team_world();
            let color = (img.this_image() % 2) as u64;
            let sub = img.team_split(&w, color, img.this_image() as i64);
            assert_eq!(sub.size(), 4);
            assert_eq!(sub.rank(), img.this_image() / 2);
            let s = img.allreduce(&sub, &[img.this_image() as u64], |a, b| a + b);
            assert_eq!(s[0], if color == 0 { 12 } else { 16 });
        });
    }

    #[test]
    fn sync_images_pairs_only() {
        both_substrates(4, |img| {
            let w = img.team_world();
            let me = img.this_image();
            // Partner with the image whose index differs in bit 0.
            let partner = me ^ 1;
            for _ in 0..5 {
                img.sync_images(&w, &[partner]);
            }
            img.sync_all();
        });
    }

    #[test]
    fn sync_images_with_multiple_partners() {
        both_substrates(4, |img| {
            let w = img.team_world();
            let me = img.this_image();
            // Everyone syncs with both ring neighbours.
            let l = (me + 3) % 4;
            let r = (me + 1) % 4;
            for _ in 0..3 {
                img.sync_images(&w, &[l, r]);
            }
            img.sync_all();
        });
    }

    #[test]
    fn co_intrinsics() {
        both_substrates(4, |img| {
            let w = img.team_world();
            let me = img.this_image() as i64;

            let mut s = vec![me, 1];
            img.co_sum(&w, &mut s);
            assert_eq!(s, vec![6, 4]);

            let mut mx = vec![me * 10];
            img.co_max(&w, &mut mx);
            assert_eq!(mx, vec![30]);

            let mut mn = vec![me - 2];
            img.co_min(&w, &mut mn);
            assert_eq!(mn, vec![-2]);

            let mut b = if img.this_image() == 3 {
                vec![7u64, 8]
            } else {
                Vec::new()
            };
            img.co_broadcast(&w, 3, &mut b);
            assert_eq!(b, vec![7, 8]);
        });
    }

    #[test]
    fn nested_team_split() {
        both_substrates(8, |img| {
            let w = img.team_world();
            let half = img.team_split(&w, (img.this_image() / 4) as u64, 0);
            let quarter = img.team_split(&half, (half.rank() / 2) as u64, 0);
            assert_eq!(quarter.size(), 2);
            img.barrier(&quarter);
            img.barrier(&half);
            img.sync_all();
        });
    }
}
