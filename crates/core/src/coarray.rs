//! Coarrays — "the main addition of CAF to Fortran 95" (paper §3.1).
//!
//! A `Coarray<T>` gives every image of a team `len` local elements of `T`,
//! remotely readable and writable by any other team member with one-sided
//! semantics.
//!
//! The remote-reference representation is substrate-specific, exactly as in
//! the paper:
//!
//! * **CAF-MPI**: a `(window, rank, displacement)` triple — MPI RMA hides
//!   absolute remote addresses inside the window object, so the runtime
//!   carries the window and an offset;
//! * **CAF-GASNet**: an `(image, address)` pair — GASNet exposes raw
//!   segment addresses.
//!
//! Blocking reads and writes have *global visibility* semantics: when the
//! call returns, the effect is visible to everyone (the MPI path issues
//! `MPI_Put` + `MPI_Win_flush`; GASNet puts are remotely complete at
//! return).

use std::marker::PhantomData;
use std::sync::Arc;

use caf_mpisim::Window;

use caf_fabric::Pod;

use crate::backend::Backend;
use crate::image::Image;
use crate::stats::StatCat;
use crate::team::{Team, TeamInner};

/// A coarray: `len` elements of `T` on every image of its team.
///
/// The handle is `Send + Sync` so it can be captured by shipped functions;
/// operations go through the *executing* image's runtime.
pub struct Coarray<T: Pod> {
    pub(crate) region: Arc<RegionInner>,
    len: usize,
    _pd: PhantomData<T>,
}

impl<T: Pod> Clone for Coarray<T> {
    fn clone(&self) -> Self {
        Coarray {
            region: Arc::clone(&self.region),
            len: self.len,
            _pd: PhantomData,
        }
    }
}

impl<T: Pod> std::fmt::Debug for Coarray<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Coarray")
            .field("len", &self.len)
            .field("region", &self.region.id())
            .finish()
    }
}

#[derive(Debug)]
pub(crate) enum RegionInner {
    /// MPI substrate: the coarray is an RMA window.
    Mpi { win: Arc<Window> },
    /// GASNet substrate: per-member offsets into the attached segments.
    Gasnet {
        id: u64,
        offsets: Arc<[usize]>,
        members: Arc<[usize]>,
        bytes: usize,
    },
}

impl RegionInner {
    pub(crate) fn id(&self) -> u64 {
        match self {
            RegionInner::Mpi { win } => win.id(),
            RegionInner::Gasnet { id, .. } => *id,
        }
    }

}

/// A strided section of a coarray — the runtime form of a Fortran array
/// section `A(lo:hi:step)[img]`: `count` elements starting at element
/// `offset`, `stride` elements apart.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Section {
    /// First element index.
    pub offset: usize,
    /// Number of elements.
    pub count: usize,
    /// Distance between consecutive elements, in elements (≥ 1).
    pub stride: usize,
}

impl Section {
    /// A section of `count` elements from `offset`, `stride` apart.
    pub fn new(offset: usize, count: usize, stride: usize) -> Self {
        assert!(stride >= 1, "section stride must be at least 1");
        Section {
            offset,
            count,
            stride,
        }
    }

    /// The Fortran-style form `lo : hi_exclusive : step`.
    pub fn from_range(lo: usize, hi_exclusive: usize, step: usize) -> Self {
        assert!(step >= 1, "section step must be at least 1");
        let count = if hi_exclusive > lo {
            (hi_exclusive - lo).div_ceil(step)
        } else {
            0
        };
        Section::new(lo, count, step)
    }

    /// Index of the last touched element (inclusive); `None` when empty.
    pub fn last(&self) -> Option<usize> {
        self.count
            .checked_sub(1)
            .map(|c| self.offset + c * self.stride)
    }
}

/// A substrate-level remote reference, exposed for inspection and tests —
/// the representations contrasted in paper §3.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemoteRef {
    /// CAF-MPI: `(window, rank, displacement)`.
    WindowRankDisp {
        /// Window id.
        window: u64,
        /// Target rank within the window's communicator.
        rank: usize,
        /// Byte displacement from the window base.
        disp: usize,
    },
    /// CAF-GASNet: `(image, address)`.
    ImageAddress {
        /// Target global image.
        image: usize,
        /// Byte address within the target's segment.
        address: usize,
    },
}

impl Image {
    /// Collectively allocate a coarray of `len` elements per image over
    /// `team`.
    pub fn coarray_alloc<T: Pod>(&self, team: &Team, len: usize) -> Coarray<T> {
        let bytes = len * std::mem::size_of::<T>();
        let region = match (&self.backend, &team.inner) {
            (Backend::Mpi(b), TeamInner::Mpi(comm)) => {
                // Paper §3.1: allocate with MPI_WIN_ALLOCATE, lock all
                // targets with MPI_WIN_LOCK_ALL for the window's lifetime.
                let win = b.mpi.win_allocate(comm, bytes).expect("win_allocate");
                b.mpi.win_lock_all(&win);
                let win = Arc::new(win);
                b.windows.borrow_mut().insert(win.id(), Arc::clone(&win));
                RegionInner::Mpi { win }
            }
            (Backend::Gasnet(b), TeamInner::Gasnet(t)) => {
                let off = b.arena.alloc(bytes).unwrap_or_else(|| {
                    panic!(
                        "GASNet segment exhausted allocating {bytes} bytes \
                         (increase GasnetConfig::segment_size)"
                    )
                });
                let id = self.next_team_token(team, 0xCA);
                b.regions.borrow_mut().insert(id, off);
                let offsets: Vec<usize> = self
                    .allgather(team, &[off as u64])
                    .into_iter()
                    .map(|o| o as usize)
                    .collect();
                RegionInner::Gasnet {
                    id,
                    offsets: offsets.into(),
                    members: t.members.to_vec().into(),
                    bytes,
                }
            }
            _ => panic!("team does not belong to this substrate"),
        };
        Coarray {
            region: Arc::new(region),
            len,
            _pd: PhantomData,
        }
    }

    /// Collectively free a coarray. All images of the allocating team must
    /// participate; outstanding clones of the handle become invalid.
    pub fn coarray_free<T: Pod>(&self, team: &Team, ca: Coarray<T>) {
        // The free is collective and programs may rely on it as a sync
        // point, but its interior barrier is substrate-level — record the
        // round explicitly so the race detector sees the edge, then drop
        // the region's shadow history (ids may be recycled).
        #[cfg(feature = "check")]
        let region_id = ca.region.id();
        #[cfg(feature = "check")]
        caf_check::hooks::hb_coll_enter(self.this_image(), team.id());
        match (&self.backend, &*ca.region) {
            (Backend::Mpi(b), RegionInner::Mpi { win }) => {
                b.windows.borrow_mut().remove(&win.id());
                b.mpi.win_unlock_all(win).expect("unlock_all");
                b.mpi.win_free_shared(win).expect("win_free");
            }
            (Backend::Gasnet(b), RegionInner::Gasnet { id, offsets, bytes, .. }) => {
                self.barrier(team);
                b.regions.borrow_mut().remove(id);
                let me = team.rank();
                b.arena.free(offsets[me], *bytes);
            }
            _ => panic!("coarray does not belong to this substrate"),
        }
        #[cfg(feature = "check")]
        {
            caf_check::hooks::hb_coll_exit(self.this_image(), team.id(), team.size());
            caf_check::hooks::hb_region_free(region_id);
        }
    }
}

impl<T: Pod> Coarray<T> {
    /// Elements per image.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the coarray has zero elements per image.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn byte_off(&self, elem_off: usize, count: usize) -> usize {
        assert!(
            elem_off + count <= self.len,
            "coarray access [{elem_off}, {}) out of bounds (len {})",
            elem_off + count,
            self.len
        );
        elem_off * std::mem::size_of::<T>()
    }

    /// Global image index of team member `member` (for trace attribution).
    pub(crate) fn global_member(&self, member: usize) -> usize {
        match &*self.region {
            RegionInner::Mpi { win } => win.comm().global_rank(member),
            RegionInner::Gasnet { members, .. } => members[member],
        }
    }

    /// The substrate-level remote reference for `member`'s part.
    pub fn remote_ref(&self, member: usize) -> RemoteRef {
        match &*self.region {
            RegionInner::Mpi { win } => RemoteRef::WindowRankDisp {
                window: win.id(),
                rank: member,
                disp: 0,
            },
            RegionInner::Gasnet {
                offsets, members, ..
            } => RemoteRef::ImageAddress {
                image: members[member],
                address: offsets[member],
            },
        }
    }

    /// Blocking remote read: `out = A(elem_off .. elem_off+|out|)[member]`.
    pub fn read(&self, img: &Image, member: usize, elem_off: usize, out: &mut [T]) {
        let disp = self.byte_off(elem_off, out.len());
        let bytes = std::mem::size_of_val(out) as u64;
        #[cfg(feature = "check")]
        caf_check::hooks::hb_access(
            img.this_image(),
            self.region.id(),
            self.global_member(member),
            disp as u64,
            bytes,
            false,
        );
        img.stats().timed_d(
            StatCat::CoarrayRead,
            Some(self.global_member(member)),
            bytes,
            Some(self.region.id()),
            Some(disp as u64),
            || {
            match (&img.backend, &*self.region) {
                (Backend::Mpi(b), RegionInner::Mpi { win }) => {
                    b.mpi.get(win, member, disp, out).expect("coarray read");
                }
                (Backend::Gasnet(b), RegionInner::Gasnet { offsets, members, .. }) => {
                    b.g.get(members[member], offsets[member] + disp, out)
                        .expect("coarray read");
                }
                _ => panic!("coarray does not belong to this substrate"),
            }
        },
        );
    }

    /// Blocking remote write: `A(elem_off ..)[member] = data`, globally
    /// visible at return (put + flush on MPI, paper §3.1).
    pub fn write(&self, img: &Image, member: usize, elem_off: usize, data: &[T]) {
        let disp = self.byte_off(elem_off, data.len());
        let bytes = std::mem::size_of_val(data) as u64;
        #[cfg(feature = "check")]
        caf_check::hooks::hb_access(
            img.this_image(),
            self.region.id(),
            self.global_member(member),
            disp as u64,
            bytes,
            true,
        );
        img.stats().timed_d(
            StatCat::CoarrayWrite,
            Some(self.global_member(member)),
            bytes,
            Some(self.region.id()),
            Some(disp as u64),
            || {
            match (&img.backend, &*self.region) {
                (Backend::Mpi(b), RegionInner::Mpi { win }) => {
                    b.mpi.put(win, member, disp, data).expect("coarray write");
                    b.mpi.win_flush(win, member).expect("coarray write flush");
                }
                (Backend::Gasnet(b), RegionInner::Gasnet { offsets, members, .. }) => {
                    b.g.put(members[member], offsets[member] + disp, data)
                        .expect("coarray write");
                }
                _ => panic!("coarray does not belong to this substrate"),
            }
        },
        );
    }

    /// Read this image's local part.
    ///
    /// "Local" always means the *executing* image: a coarray handle
    /// captured by a shipped function resolves to the executor's part,
    /// not the shipper's.
    pub fn local_read(&self, img: &Image, elem_off: usize, out: &mut [T]) {
        let disp = self.byte_off(elem_off, out.len());
        #[cfg(feature = "check")]
        caf_check::hooks::hb_access(
            img.this_image(),
            self.region.id(),
            img.this_image(),
            disp as u64,
            std::mem::size_of_val(out) as u64,
            false,
        );
        match (&img.backend, &*self.region) {
            (Backend::Mpi(b), RegionInner::Mpi { win }) => {
                let me = win
                    .comm()
                    .comm_rank_of_global(img.this_image())
                    .expect("image not a member of this coarray's team");
                b.mpi.win_read_local_at(win, me, disp, out).expect("local read");
            }
            (Backend::Gasnet(b), RegionInner::Gasnet { offsets, members, .. }) => {
                let me = members
                    .iter()
                    .position(|&m| m == img.this_image())
                    .expect("image not a member of this coarray's team");
                b.g.read_local(offsets[me] + disp, out).expect("local read");
            }
            _ => panic!("coarray does not belong to this substrate"),
        }
    }

    /// Write this image's local part (see [`Coarray::local_read`] for the
    /// meaning of "local" under function shipping).
    pub fn local_write(&self, img: &Image, elem_off: usize, data: &[T]) {
        let disp = self.byte_off(elem_off, data.len());
        #[cfg(feature = "check")]
        caf_check::hooks::hb_access(
            img.this_image(),
            self.region.id(),
            img.this_image(),
            disp as u64,
            std::mem::size_of_val(data) as u64,
            true,
        );
        match (&img.backend, &*self.region) {
            (Backend::Mpi(b), RegionInner::Mpi { win }) => {
                let me = win
                    .comm()
                    .comm_rank_of_global(img.this_image())
                    .expect("image not a member of this coarray's team");
                b.mpi.win_write_local_at(win, me, disp, data).expect("local write");
            }
            (Backend::Gasnet(b), RegionInner::Gasnet { offsets, members, .. }) => {
                let me = members
                    .iter()
                    .position(|&m| m == img.this_image())
                    .expect("image not a member of this coarray's team");
                b.g.write_local(offsets[me] + disp, data).expect("local write");
            }
            _ => panic!("coarray does not belong to this substrate"),
        }
    }

    fn check_section(&self, sec: Section, buf_len: usize) -> usize {
        assert_eq!(sec.count, buf_len, "section/buffer length mismatch");
        if let Some(last) = sec.last() {
            assert!(
                last < self.len,
                "section reaches element {last}, beyond coarray length {}",
                self.len
            );
        }
        sec.offset * std::mem::size_of::<T>()
    }

    /// Blocking strided remote read of a section (`out = A(sec)[member]`).
    pub fn read_section(&self, img: &Image, member: usize, sec: Section, out: &mut [T]) {
        let disp = self.check_section(sec, out.len());
        if sec.count == 0 {
            return;
        }
        let bytes = std::mem::size_of_val(out) as u64;
        #[cfg(feature = "check")]
        self.section_accesses(img, member, sec, false);
        img.stats().timed_d(
            StatCat::CoarrayRead,
            Some(self.global_member(member)),
            bytes,
            Some(self.region.id()),
            Some(disp as u64),
            || {
            match (&img.backend, &*self.region) {
                (Backend::Mpi(b), RegionInner::Mpi { win }) => {
                    b.mpi
                        .get_vector(win, member, disp, sec.stride, out)
                        .expect("section read");
                }
                (Backend::Gasnet(b), RegionInner::Gasnet { offsets, members, .. }) => {
                    b.g.get_strided(members[member], offsets[member] + disp, sec.stride, out)
                        .expect("section read");
                }
                _ => panic!("coarray does not belong to this substrate"),
            }
        },
        );
    }

    /// Blocking strided remote write of a section
    /// (`A(sec)[member] = data`), globally visible at return.
    pub fn write_section(&self, img: &Image, member: usize, sec: Section, data: &[T]) {
        let disp = self.check_section(sec, data.len());
        if sec.count == 0 {
            return;
        }
        let bytes = std::mem::size_of_val(data) as u64;
        #[cfg(feature = "check")]
        self.section_accesses(img, member, sec, true);
        img.stats().timed_d(
            StatCat::CoarrayWrite,
            Some(self.global_member(member)),
            bytes,
            Some(self.region.id()),
            Some(disp as u64),
            || {
            match (&img.backend, &*self.region) {
                (Backend::Mpi(b), RegionInner::Mpi { win }) => {
                    b.mpi
                        .put_vector(win, member, disp, sec.stride, data)
                        .expect("section write");
                    b.mpi.win_flush(win, member).expect("section write flush");
                }
                (Backend::Gasnet(b), RegionInner::Gasnet { offsets, members, .. }) => {
                    b.g.put_strided(members[member], offsets[member] + disp, sec.stride, data)
                        .expect("section write");
                }
                _ => panic!("coarray does not belong to this substrate"),
            }
        },
        );
    }

    /// Record one shadow access per section element — stride gaps are
    /// untouched bytes and must not be claimed, or disjoint interleaved
    /// sections would be flagged as overlapping.
    #[cfg(feature = "check")]
    fn section_accesses(&self, img: &Image, member: usize, sec: Section, write: bool) {
        let esz = std::mem::size_of::<T>();
        let owner = self.global_member(member);
        for i in 0..sec.count {
            caf_check::hooks::hb_access(
                img.this_image(),
                self.region.id(),
                owner,
                ((sec.offset + i * sec.stride) * esz) as u64,
                esz as u64,
                write,
            );
        }
    }

    /// One-sided atomic fetch-and-add on an 8-byte element of `member`'s
    /// part (maps to `MPI_Fetch_and_op` with `MPI_SUM`). Returns the value
    /// observed before the update.
    ///
    /// Only available on the MPI substrate: the GASNet *core* API offers
    /// no remote atomics (CAF-GASNet emulates such operations with active
    /// messages), so this call panics there.
    pub fn fetch_add(&self, img: &Image, member: usize, elem_off: usize, value: T) -> T
    where
        T: caf_mpisim::BitsRepr,
    {
        let disp = self.byte_off(elem_off, 1);
        match (&img.backend, &*self.region) {
            (Backend::Mpi(b), RegionInner::Mpi { win }) => b
                .mpi
                .fetch_and_op(win, member, disp, value, caf_mpisim::AccOp::Sum)
                .expect("fetch_and_op"),
            (Backend::Gasnet(_), _) => panic!(
                "one-sided atomics are MPI-3 features; the GASNet core API                  has none (use events or AMs on the GASNet substrate)"
            ),
            _ => panic!("coarray does not belong to this substrate"),
        }
    }

    /// One-sided atomic compare-and-swap on an 8-byte element of
    /// `member`'s part (maps to `MPI_Compare_and_swap`). Returns the value
    /// observed before the swap. MPI substrate only (see
    /// [`Coarray::fetch_add`]).
    pub fn compare_and_swap(
        &self,
        img: &Image,
        member: usize,
        elem_off: usize,
        expected: T,
        new: T,
    ) -> T
    where
        T: caf_mpisim::BitsRepr,
    {
        let disp = self.byte_off(elem_off, 1);
        match (&img.backend, &*self.region) {
            (Backend::Mpi(b), RegionInner::Mpi { win }) => b
                .mpi
                .compare_and_swap(win, member, disp, expected, new)
                .expect("compare_and_swap"),
            (Backend::Gasnet(_), _) => panic!(
                "one-sided atomics are MPI-3 features; the GASNet core API                  has none (use events or AMs on the GASNet substrate)"
            ),
            _ => panic!("coarray does not belong to this substrate"),
        }
    }

    /// Convenience: fetch the whole local part as a vector.
    pub fn local_vec(&self, img: &Image) -> Vec<T> {
        let mut out = crate::zeroed_vec::<T>(self.len);
        if self.len > 0 {
            self.local_read(img, 0, &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::{CafConfig, CafUniverse, SubstrateKind};

    fn both(n: usize, f: impl Fn(&Image) + Send + Sync) {
        for kind in [SubstrateKind::Mpi, SubstrateKind::Gasnet] {
            CafUniverse::run_with_config(n, CafConfig::on(kind), |img| f(img));
        }
    }

    #[test]
    fn remote_write_then_read() {
        both(3, |img| {
            let w = img.team_world();
            let ca: Coarray<f64> = img.coarray_alloc(&w, 8);
            let me = img.this_image();
            // Everyone writes its id into slot `me` of image (me+1)%3.
            ca.write(img, (me + 1) % 3, me, &[me as f64 + 100.0]);
            img.sync_all();
            // Verify locally.
            let local = ca.local_vec(img);
            let writer = (me + 3 - 1) % 3;
            assert_eq!(local[writer], writer as f64 + 100.0);
            // And remotely.
            let mut probe = [0.0f64];
            ca.read(img, (me + 1) % 3, me, &mut probe);
            assert_eq!(probe[0], me as f64 + 100.0);
            img.coarray_free(&w, ca);
        });
    }

    #[test]
    fn remote_ref_shapes_match_substrate() {
        CafUniverse::run(2, |img| {
            let w = img.team_world();
            let ca: Coarray<u64> = img.coarray_alloc(&w, 4);
            assert!(matches!(
                ca.remote_ref(1),
                RemoteRef::WindowRankDisp { rank: 1, .. }
            ));
            img.coarray_free(&w, ca);
        });
        CafUniverse::run_with_config(2, CafConfig::on(SubstrateKind::Gasnet), |img| {
            let w = img.team_world();
            let ca: Coarray<u64> = img.coarray_alloc(&w, 4);
            assert!(matches!(
                ca.remote_ref(1),
                RemoteRef::ImageAddress { image: 1, .. }
            ));
            img.coarray_free(&w, ca);
        });
    }

    #[test]
    fn coarray_over_subteam() {
        both(6, |img| {
            let w = img.team_world();
            let sub = img.team_split(&w, (img.this_image() % 2) as u64, 0);
            let ca: Coarray<u64> = img.coarray_alloc(&sub, 2);
            let peer = (sub.rank() + 1) % sub.size();
            ca.write(img, peer, 0, &[sub.rank() as u64 + 1]);
            img.barrier(&sub);
            let local = ca.local_vec(img);
            let expect = ((sub.rank() + sub.size() - 1) % sub.size()) as u64 + 1;
            assert_eq!(local[0], expect);
            img.coarray_free(&sub, ca);
            img.sync_all();
        });
    }

    #[test]
    fn gasnet_free_reuses_segment_space() {
        CafUniverse::run_with_config(2, CafConfig::on(SubstrateKind::Gasnet), |img| {
            let w = img.team_world();
            for _ in 0..50 {
                let ca: Coarray<f64> = img.coarray_alloc(&w, 1 << 12);
                img.coarray_free(&w, ca);
            }
            // 50 × 32 KB would exhaust the 4 MB default segment without
            // the allocator reclaiming freed runs — wait, 50*32KB = 1.6MB.
            // Use a size that proves reuse: 50 × 1 MB certainly would.
            for _ in 0..50 {
                let ca: Coarray<u8> = img.coarray_alloc(&w, 1 << 20);
                img.coarray_free(&w, ca);
            }
        });
    }

    #[test]
    #[should_panic(expected = "image panicked")]
    fn out_of_bounds_access_panics() {
        CafUniverse::run(2, |img| {
            let w = img.team_world();
            let ca: Coarray<u64> = img.coarray_alloc(&w, 4);
            let mut out = [0u64; 2];
            ca.read(img, 0, 3, &mut out);
        });
    }

    #[test]
    fn sections_read_write_on_both_substrates() {
        both(2, |img| {
            let w = img.team_world();
            let ca: Coarray<u64> = img.coarray_alloc(&w, 16);
            if img.this_image() == 0 {
                // A(1:13:4)[1] = [100, 101, 102, 103]  (elements 1,5,9,13)
                ca.write_section(img, 1, Section::new(1, 4, 4), &[100, 101, 102, 103]);
            }
            img.sync_all();
            if img.this_image() == 1 {
                let local = ca.local_vec(img);
                assert_eq!(local[1], 100);
                assert_eq!(local[5], 101);
                assert_eq!(local[9], 102);
                assert_eq!(local[13], 103);
                assert_eq!(local[2], 0);
            }
            img.sync_all();
            if img.this_image() == 0 {
                let mut out = [0u64; 4];
                ca.read_section(img, 1, Section::new(1, 4, 4), &mut out);
                assert_eq!(out, [100, 101, 102, 103]);
            }
            img.sync_all();
            img.coarray_free(&w, ca);
        });
    }

    #[test]
    fn section_from_range_matches_fortran_triplets() {
        // A(2:10:3) → elements 2, 5, 8.
        let s = Section::from_range(2, 10, 3);
        assert_eq!((s.offset, s.count, s.stride), (2, 3, 3));
        assert_eq!(s.last(), Some(8));
        // Empty section.
        let e = Section::from_range(5, 5, 1);
        assert_eq!(e.count, 0);
        assert_eq!(e.last(), None);
        // Contiguous.
        let c = Section::from_range(0, 4, 1);
        assert_eq!((c.offset, c.count, c.stride), (0, 4, 1));
    }

    #[test]
    #[should_panic(expected = "image panicked")]
    fn section_out_of_bounds_panics() {
        CafUniverse::run(1, |img| {
            let w = img.team_world();
            let ca: Coarray<u64> = img.coarray_alloc(&w, 8);
            let mut out = [0u64; 3];
            // Elements 0, 4, 8 — 8 is out of bounds for len 8.
            ca.read_section(img, 0, Section::new(0, 3, 4), &mut out);
        });
    }

    #[test]
    fn fetch_add_is_atomic_across_images() {
        CafUniverse::run(4, |img| {
            let w = img.team_world();
            let ca: Coarray<u64> = img.coarray_alloc(&w, 1);
            for _ in 0..250 {
                ca.fetch_add(img, 0, 0, 1u64);
            }
            img.sync_all();
            if img.this_image() == 0 {
                assert_eq!(ca.local_vec(img)[0], 1000);
            }
            img.coarray_free(&w, ca);
        });
    }

    #[test]
    fn compare_and_swap_elects_one_winner() {
        CafUniverse::run(4, |img| {
            let w = img.team_world();
            let ca: Coarray<u64> = img.coarray_alloc(&w, 1);
            let prev = ca.compare_and_swap(img, 0, 0, 0u64, img.this_image() as u64 + 1);
            let winners = img.allreduce(&w, &[(prev == 0) as u64], |a, b| a + b);
            assert_eq!(winners[0], 1);
            img.coarray_free(&w, ca);
        });
    }

    #[test]
    #[should_panic(expected = "image panicked")]
    fn atomics_unsupported_on_gasnet() {
        CafUniverse::run_with_config(1, CafConfig::on(SubstrateKind::Gasnet), |img| {
            let w = img.team_world();
            let ca: Coarray<u64> = img.coarray_alloc(&w, 1);
            let _ = ca.fetch_add(img, 0, 0, 1u64);
        });
    }

    #[test]
    fn multiple_coarrays_are_independent() {
        both(2, |img| {
            let w = img.team_world();
            let a: Coarray<u64> = img.coarray_alloc(&w, 4);
            let b: Coarray<u64> = img.coarray_alloc(&w, 4);
            let peer = 1 - img.this_image();
            a.write(img, peer, 0, &[111]);
            b.write(img, peer, 0, &[222]);
            img.sync_all();
            assert_eq!(a.local_vec(img)[0], 111);
            assert_eq!(b.local_vec(img)[0], 222);
            img.coarray_free(&w, a);
            img.coarray_free(&w, b);
        });
    }
}
