//! Function shipping (paper §2.1): move computation to the image that owns
//! the data.
//!
//! Because all images of a job share one address space in this workspace,
//! shipped closures do not need serialization: the origin parks the boxed
//! closure in a universe-wide registry and ships only the slot id inside a
//! runtime AM. The target pops and executes it during its next poll. (A
//! distributed implementation would marshal a function id plus arguments;
//! the runtime protocol — AM, finish accounting, termination detection —
//! is identical.)

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::image::Image;

/// A shipped computation.
pub type ShippedFn = Box<dyn FnOnce(&Image) + Send + 'static>;

/// Universe-wide parking lot for in-flight shipped closures.
#[derive(Default)]
pub struct ShipRegistry {
    slots: Mutex<HashMap<u64, ShippedFn>>,
    next: AtomicU64,
}

impl ShipRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Park a closure; returns its slot id.
    pub fn park(&self, f: ShippedFn) -> u64 {
        let slot = self.next.fetch_add(1, Ordering::Relaxed) + 1;
        self.slots.lock().insert(slot, f);
        slot
    }

    /// Claim a parked closure for execution.
    ///
    /// # Panics
    ///
    /// Panics if the slot does not exist (a runtime protocol bug).
    pub fn claim(&self, slot: u64) -> ShippedFn {
        self.slots
            .lock()
            .remove(&slot)
            .unwrap_or_else(|| panic!("ship slot {slot} missing or already claimed"))
    }

    /// Number of closures currently parked (in flight).
    pub fn in_flight(&self) -> usize {
        self.slots.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    #[test]
    fn park_and_claim() {
        let reg = ShipRegistry::new();
        let ran = Arc::new(AtomicBool::new(false));
        let r2 = Arc::clone(&ran);
        let slot = reg.park(Box::new(move |_img| {
            r2.store(true, Ordering::SeqCst);
        }));
        assert_eq!(reg.in_flight(), 1);
        let _f = reg.claim(slot);
        assert_eq!(reg.in_flight(), 0);
        // The closure itself is exercised in the runtime integration tests;
        // here we only verify registry mechanics.
        assert!(!ran.load(Ordering::SeqCst));
    }

    #[test]
    fn slots_are_unique() {
        let reg = ShipRegistry::new();
        let a = reg.park(Box::new(|_| {}));
        let b = reg.park(Box::new(|_| {}));
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "missing or already claimed")]
    fn double_claim_panics() {
        let reg = ShipRegistry::new();
        let slot = reg.park(Box::new(|_| {}));
        let _f = reg.claim(slot);
        let _g = reg.claim(slot);
    }
}
