//! Per-image time decomposition — the runtime's built-in stand-in for the
//! paper's HPCToolkit profiles (Figures 4 and 8).
//!
//! Every runtime primitive wraps itself in [`Stats::timed`], so after a
//! benchmark run each image can report how much wall-clock time went to
//! coarray writes, event waits, event notifies, alltoalls, and so on — the
//! exact categories the paper's decomposition figures use.

use std::cell::Cell;

use caf_fabric::delay::monotonic_ns;

/// The accounting categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StatCat {
    /// Blocking remote coarray writes.
    CoarrayWrite,
    /// Blocking remote coarray reads.
    CoarrayRead,
    /// `event_wait` / `event_trywait` polling.
    EventWait,
    /// `event_notify`, including its release barrier and flush.
    EventNotify,
    /// Team alltoall (the FFT hot spot).
    Alltoall,
    /// Team barriers.
    Barrier,
    /// Team reductions / broadcasts.
    Reduction,
    /// `finish` termination detection and closing synchronization.
    Finish,
    /// Asynchronous-copy issue path.
    CopyAsync,
    /// Application compute time, recorded by the benchmark itself through
    /// [`Stats::timed`].
    Computation,
}

/// Indexable list of every category, in display order.
pub const ALL_CATS: [StatCat; 10] = [
    StatCat::Computation,
    StatCat::CoarrayWrite,
    StatCat::CoarrayRead,
    StatCat::EventWait,
    StatCat::EventNotify,
    StatCat::Alltoall,
    StatCat::Barrier,
    StatCat::Reduction,
    StatCat::Finish,
    StatCat::CopyAsync,
];

const fn idx(c: StatCat) -> usize {
    // Must agree with ALL_CATS order; checked by `idx_matches_all_cats`.
    match c {
        StatCat::Computation => 0,
        StatCat::CoarrayWrite => 1,
        StatCat::CoarrayRead => 2,
        StatCat::EventWait => 3,
        StatCat::EventNotify => 4,
        StatCat::Alltoall => 5,
        StatCat::Barrier => 6,
        StatCat::Reduction => 7,
        StatCat::Finish => 8,
        StatCat::CopyAsync => 9,
    }
}

/// The trace operation a category's timed sections are recorded under.
const fn trace_op(c: StatCat) -> caf_trace::Op {
    match c {
        StatCat::Computation => caf_trace::Op::Computation,
        StatCat::CoarrayWrite => caf_trace::Op::CoarrayWrite,
        StatCat::CoarrayRead => caf_trace::Op::CoarrayRead,
        StatCat::EventWait => caf_trace::Op::EventWait,
        StatCat::EventNotify => caf_trace::Op::EventNotify,
        StatCat::Alltoall => caf_trace::Op::Alltoall,
        StatCat::Barrier => caf_trace::Op::Barrier,
        StatCat::Reduction => caf_trace::Op::Reduction,
        StatCat::Finish => caf_trace::Op::Finish,
        StatCat::CopyAsync => caf_trace::Op::CopyAsync,
    }
}

/// Per-image accounting ledger. Not thread-safe by design — each image owns
/// its own.
#[derive(Debug)]
pub struct Stats {
    nanos: [Cell<u64>; 10],
    calls: [Cell<u64>; 10],
    /// Depth guard so nested timed sections do not double-count: only the
    /// outermost section accrues time.
    depth: Cell<u32>,
    /// When false, `timed` runs its closure without reading the clock or
    /// touching the ledger (trace spans are still emitted if tracing is on).
    enabled: Cell<bool>,
}

impl Default for Stats {
    fn default() -> Self {
        Stats {
            nanos: Default::default(),
            calls: Default::default(),
            depth: Cell::new(0),
            enabled: Cell::new(true),
        }
    }
}

impl Stats {
    /// A zeroed ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Turn the wall-clock accounting on or off. Disabled, `timed` costs
    /// one branch per call — no `Instant::now`, no ledger writes. Tracing
    /// (the `caf-trace` session, if one is active) is unaffected.
    pub fn set_accounting(&self, on: bool) {
        self.enabled.set(on);
    }

    /// Whether wall-clock accounting is currently on.
    pub fn accounting_enabled(&self) -> bool {
        self.enabled.get()
    }

    /// Run `f`, attributing its wall-clock time to `cat`. Nested `timed`
    /// calls do not double-count: inner sections are charged to their own
    /// category *only when entered at top level*; time inside an outer
    /// section stays with the outer category.
    pub fn timed<R>(&self, cat: StatCat, f: impl FnOnce() -> R) -> R {
        self.timed_t(cat, None, 0, f)
    }

    /// As [`Stats::timed`], also tagging the emitted trace span with a
    /// target image and payload size (used by remote coarray accesses and
    /// notifies, where the blocked-on edge matters for stall diagnosis).
    pub fn timed_t<R>(
        &self,
        cat: StatCat,
        target: Option<usize>,
        bytes: u64,
        f: impl FnOnce() -> R,
    ) -> R {
        self.timed_d(cat, target, bytes, None, None, f)
    }

    /// As [`Stats::timed_t`], also tagging the span with a window/region
    /// id and a displacement-or-sync-token word — the coordinates the
    /// offline checker (`caf-check`) replays.
    pub fn timed_d<R>(
        &self,
        cat: StatCat,
        target: Option<usize>,
        bytes: u64,
        window: Option<u64>,
        disp: Option<u64>,
        f: impl FnOnce() -> R,
    ) -> R {
        let _span = caf_trace::span_d(trace_op(cat), target, bytes, window, disp);
        if !self.enabled.get() {
            return f();
        }
        if self.depth.get() > 0 {
            // Count the call but let the enclosing section keep the time.
            self.calls[idx(cat)].set(self.calls[idx(cat)].get() + 1);
            return f();
        }
        self.depth.set(1);
        let t0 = monotonic_ns();
        let r = f();
        let ns = monotonic_ns().saturating_sub(t0);
        self.depth.set(0);
        let i = idx(cat);
        self.nanos[i].set(self.nanos[i].get() + ns);
        self.calls[i].set(self.calls[i].get() + 1);
        r
    }

    /// Directly add `ns` nanoseconds to `cat` (for callers that measured
    /// themselves).
    pub fn add_ns(&self, cat: StatCat, ns: u64) {
        let i = idx(cat);
        self.nanos[i].set(self.nanos[i].get() + ns);
        self.calls[i].set(self.calls[i].get() + 1);
    }

    /// Seconds accumulated under `cat`.
    pub fn seconds(&self, cat: StatCat) -> f64 {
        self.nanos[idx(cat)].get() as f64 * 1e-9
    }

    /// Number of sections/calls recorded under `cat`.
    pub fn calls(&self, cat: StatCat) -> u64 {
        self.calls[idx(cat)].get()
    }

    /// Reset every counter.
    pub fn reset(&self) {
        for c in &self.nanos {
            c.set(0);
        }
        for c in &self.calls {
            c.set(0);
        }
    }

    /// Snapshot of all categories as `(category, seconds, calls)`.
    pub fn snapshot(&self) -> Vec<(StatCat, f64, u64)> {
        ALL_CATS
            .iter()
            .map(|&c| (c, self.seconds(c), self.calls(c)))
            .collect()
    }
}

/// A plain-data snapshot that can cross thread boundaries (per-image stats
/// gathered by the launcher).
#[derive(Debug, Clone, Default)]
pub struct StatsReport {
    /// `(category, seconds, calls)` rows in [`ALL_CATS`] order.
    pub rows: Vec<(StatCat, f64, u64)>,
}

impl StatsReport {
    /// Capture from a live ledger.
    pub fn capture(stats: &Stats) -> Self {
        StatsReport {
            rows: stats.snapshot(),
        }
    }

    /// Seconds for one category.
    pub fn seconds(&self, cat: StatCat) -> f64 {
        self.rows
            .iter()
            .find(|(c, _, _)| *c == cat)
            .map(|&(_, s, _)| s)
            .unwrap_or(0.0)
    }

    /// Elementwise mean across many reports (per-image → per-run).
    pub fn mean(reports: &[StatsReport]) -> StatsReport {
        let n = reports.len().max(1) as f64;
        let rows = ALL_CATS
            .iter()
            .map(|&c| {
                let secs: f64 = reports.iter().map(|r| r.seconds(c)).sum::<f64>() / n;
                let calls: u64 = reports
                    .iter()
                    .flat_map(|r| r.rows.iter().filter(|(rc, _, _)| *rc == c))
                    .map(|&(_, _, k)| k)
                    .sum::<u64>()
                    / reports.len().max(1) as u64;
                (c, secs, calls)
            })
            .collect();
        StatsReport { rows }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    #[cfg_attr(miri, ignore = "wall-clock timing / raw spin")]
    fn timed_accumulates() {
        let s = Stats::new();
        s.timed(StatCat::Barrier, || std::thread::sleep(Duration::from_millis(5)));
        s.timed(StatCat::Barrier, || std::thread::sleep(Duration::from_millis(5)));
        assert!(s.seconds(StatCat::Barrier) >= 0.009);
        assert_eq!(s.calls(StatCat::Barrier), 2);
        assert_eq!(s.seconds(StatCat::Alltoall), 0.0);
    }

    #[test]
    #[cfg_attr(miri, ignore = "wall-clock timing / raw spin")]
    fn nesting_does_not_double_count() {
        let s = Stats::new();
        s.timed(StatCat::EventNotify, || {
            s.timed(StatCat::Barrier, || {
                std::thread::sleep(Duration::from_millis(5))
            });
        });
        assert!(s.seconds(StatCat::EventNotify) >= 0.004);
        assert_eq!(s.seconds(StatCat::Barrier), 0.0);
        assert_eq!(s.calls(StatCat::Barrier), 1);
    }

    #[test]
    fn reset_zeroes() {
        let s = Stats::new();
        s.add_ns(StatCat::Alltoall, 1_000_000);
        s.reset();
        assert_eq!(s.seconds(StatCat::Alltoall), 0.0);
        assert_eq!(s.calls(StatCat::Alltoall), 0);
    }

    #[test]
    fn report_mean() {
        let mk = |ns: u64| {
            let s = Stats::new();
            s.add_ns(StatCat::EventWait, ns);
            StatsReport::capture(&s)
        };
        let m = StatsReport::mean(&[mk(1_000_000_000), mk(3_000_000_000)]);
        assert!((m.seconds(StatCat::EventWait) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn timed_returns_value() {
        let s = Stats::new();
        let v = s.timed(StatCat::Computation, || 42);
        assert_eq!(v, 42);
    }

    #[test]
    fn idx_matches_all_cats() {
        for (i, &c) in ALL_CATS.iter().enumerate() {
            assert_eq!(idx(c), i, "{c:?}");
        }
    }

    #[test]
    #[cfg_attr(miri, ignore = "wall-clock timing / raw spin")]
    fn disabled_accounting_records_nothing() {
        let s = Stats::new();
        assert!(s.accounting_enabled());
        s.set_accounting(false);
        let v = s.timed(StatCat::Barrier, || {
            std::thread::sleep(Duration::from_millis(2));
            7
        });
        assert_eq!(v, 7);
        assert_eq!(s.seconds(StatCat::Barrier), 0.0);
        assert_eq!(s.calls(StatCat::Barrier), 0);
        s.set_accounting(true);
        s.timed(StatCat::Barrier, || {});
        assert_eq!(s.calls(StatCat::Barrier), 1);
    }
}
