//! caf-sched: the work-stealing task executor that decouples images from
//! OS scheduling.
//!
//! The paper's evaluation runs RandomAccess and FFT at thousands of
//! images; mapping one *runnable* OS thread per image stops being viable
//! long before that. This crate runs each image as a **stackful task**: a
//! carrier thread with a small dedicated stack that is *multiplexed onto a
//! bounded pool of workers*. At most `workers` images execute at any
//! moment; everyone else is either queued (runnable) or **parked** on the
//! cooperative [`park`]/[`unpark`] API, occupying nothing but its stack.
//!
//! Scheduling structure is the classic work-stealing triple:
//!
//! * a **per-worker deque** of runnable tasks (owner pops FIFO from the
//!   front, thieves steal from the back),
//! * a **global injector** where wakeups land ([`unpark`] cannot know
//!   which worker will host the task next),
//! * **seed-ordered stealing**: each worker probes victims in a fixed
//!   permutation derived from `ExecConfig::seed` via SplitMix64, so the
//!   *choice structure* of the scheduler is a deterministic function of
//!   the seed — which is what keeps caf-model replay tokens valid when
//!   the announce-before-execute gate drives tasks instead of threads
//!   (the gate serializes execution; the executor must not add choice
//!   points of its own).
//!
//! # Why carrier threads and not ucontext-style green threads
//!
//! Each task owns one OS thread for its whole life, created with an
//! explicit (small) stack via `std::thread::Builder::stack_size`. The
//! thread is *suspended* (condvar handoff) whenever the task is not
//! scheduled on a worker, so the OS never sees more than `workers`
//! runnable threads. This keeps every thread-local in the stack above
//! working unchanged — `caf_trace`'s per-image ring, the model gate's
//! per-thread id, `RefCell` image state — and stays portable, Miri-clean
//! and TSan-visible, where hand-rolled context switching would be none of
//! those. "Stackful task" here means: own stack, cooperative scheduling
//! points, worker-multiplexed execution.
//!
//! # The park/unpark contract
//!
//! [`park`] is a *cooperative* blocking point: it returns the calling
//! task's worker to the pool and suspends the task until some other task
//! calls [`unpark`] with its id. A token (permit) makes the pair
//! race-free in the standard way: an `unpark` that arrives while the task
//! is still running is banked and consumed by the next `park`, so the
//! wakeup protocol
//!
//! ```text
//! receiver:  loop { if try_recv() { return } park() }
//! sender:    push(msg); unpark(receiver)
//! ```
//!
//! never loses a message regardless of interleaving. Every blocking site
//! in the fabric funnels through exactly this loop when running under
//! [`ExecMode::Tasks`]; OS-blocking there would wedge a worker and — with
//! more images than workers — deadlock the job, so the cooperative form
//! is a correctness requirement, not an optimisation.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};

/// How a job's images are executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// One OS thread per image, scheduled by the kernel — the
    /// paper-faithful default (the runtimes under study are
    /// process-per-image).
    #[default]
    Threads,
    /// Images are stackful tasks multiplexed onto a bounded worker pool
    /// by the work-stealing executor; blocking points park cooperatively.
    /// This is what makes P=1024 executable for real.
    Tasks,
}

/// Executor knobs. `Copy` so it can ride inside `CafConfig`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecConfig {
    /// Execution mode (see [`ExecMode`]).
    pub mode: ExecMode,
    /// Worker count under [`ExecMode::Tasks`]; `0` = auto
    /// (`available_parallelism` capped at 8, clamped to the task count).
    pub workers: usize,
    /// Seed for the deterministic steal-order permutation.
    pub seed: u64,
    /// Per-task stack size in bytes; `0` = 512 KiB. At P=1024 the default
    /// costs 512 MiB of *virtual* address space — only touched pages are
    /// resident.
    pub stack_bytes: usize,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig { mode: ExecMode::Threads, workers: 0, seed: 0xCAF5_C4ED, stack_bytes: 0 }
    }
}

impl ExecConfig {
    /// The task-executor mode with automatic worker count.
    pub fn tasks() -> Self {
        ExecConfig { mode: ExecMode::Tasks, ..ExecConfig::default() }
    }

    fn effective_workers(&self, n: usize) -> usize {
        let auto = std::thread::available_parallelism().map_or(4, |p| p.get()).min(8);
        let w = if self.workers == 0 { auto } else { self.workers };
        w.clamp(1, n.max(1))
    }

    fn effective_stack(&self) -> usize {
        if self.stack_bytes == 0 {
            512 << 10
        } else {
            self.stack_bytes
        }
    }
}

/// What a task reports to its hosting worker when it yields the quantum.
enum Report {
    /// `yield_now`: still runnable, requeue me.
    Yield,
    /// `park`: suspend me unless a permit is banked.
    WantPark,
    /// The task closure returned (or panicked).
    Done,
}

/// After the worker processed a report (park decision folded in).
enum Resumed {
    Requeue,
    Parked,
    Done,
}

/// Per-task handoff cell. The carrier thread and the hosting worker
/// rendezvous through it: the worker grants the quantum (`go`), the task
/// gives it back (`report`). `permit`/`parked` implement the unpark
/// token; both are only ever decided under this mutex, which is what
/// makes the park/unpark race-free.
#[derive(Default)]
struct TaskFlags {
    go: bool,
    report: Option<Report>,
    permit: bool,
    parked: bool,
}

#[derive(Default)]
struct TaskCtrl {
    m: Mutex<TaskFlags>,
    /// Task waits here for its next quantum.
    cv_go: Condvar,
    /// The hosting worker waits here for the task to yield.
    cv_report: Condvar,
}

/// All runnable-task queues live under one mutex: the per-worker deques
/// and the injector. Worker counts are small (≤ 8 by default) and a
/// quantum switch takes two condvar handoffs anyway, so fine-grained
/// per-deque locking would buy nothing here; the *structure* (local
/// deques + injector + ordered stealing) is what matters for determinism
/// and locality.
struct SchedState {
    injector: VecDeque<usize>,
    locals: Vec<VecDeque<usize>>,
    live: usize,
    shutdown: bool,
}

struct Inner {
    tasks: Vec<TaskCtrl>,
    sched: Mutex<SchedState>,
    /// Workers idle here when every queue is empty.
    work_cv: Condvar,
    workers: usize,
    seed: u64,
}

thread_local! {
    /// Set for the lifetime of a carrier thread: (executor, task id).
    /// Task ids are image ranks — every launcher spawns rank `i` as task
    /// `i` — which is what lets `Endpoint::send(to, ..)` translate a
    /// destination rank straight into an `unpark(to)`.
    static CURRENT: RefCell<Option<(Arc<Inner>, usize)>> = const { RefCell::new(None) };
}

fn current() -> Option<(Arc<Inner>, usize)> {
    CURRENT.with(|c| c.borrow().as_ref().map(|(i, t)| (Arc::clone(i), *t)))
}

/// Whether the calling thread is a task of a running executor. The fabric
/// uses this to pick between the cooperative park loop and the plain
/// OS-blocking receive.
pub fn on_task() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

/// The calling task's id (its image rank), if on a task.
pub fn current_task() -> Option<usize> {
    CURRENT.with(|c| c.borrow().as_ref().map(|(_, t)| *t))
}

/// Cooperatively block the calling task until [`unpark`] grants it a
/// permit. Consumes a banked permit immediately (no yield) if one is
/// pending. On a non-task thread this degrades to `thread::yield_now` —
/// callers gate on [`on_task`], so that path only exists for safety.
pub fn park() {
    let Some((inner, me)) = current() else {
        std::thread::yield_now();
        return;
    };
    {
        let mut g = inner.tasks[me].m.lock().unwrap();
        if g.permit {
            g.permit = false;
            return;
        }
    }
    yield_to_worker(&inner, me, Report::WantPark);
}

/// Make task `target` runnable (or bank a permit if it is not parked).
/// Callable only from a task of the same executor; a no-op elsewhere, so
/// senders can call it unconditionally under both exec modes.
pub fn unpark(target: usize) {
    if let Some((inner, _)) = current() {
        unpark_on(&inner, target);
    }
}

/// [`unpark`] every task of the calling task's executor. The model gate
/// uses this as its broadcast wake: whenever the gate's schedule state
/// changes it must give every cooperatively-parked task a chance to
/// re-check whose turn it is (the exact analogue of its
/// `Condvar::notify_all` for thread-mode participants). Spurious permits
/// are harmless — a woken task re-checks its condition and parks again.
pub fn unpark_all() {
    if let Some((inner, _)) = current() {
        for t in 0..inner.tasks.len() {
            unpark_on(&inner, t);
        }
    }
}

/// Yield the worker but stay runnable (requeued at the back of the
/// hosting worker's deque). Used for bounded waits — a deadline poll has
/// nobody to unpark it, so it must not fully park.
pub fn yield_now() {
    if let Some((inner, me)) = current() {
        yield_to_worker(&inner, me, Report::Yield);
    } else {
        std::thread::yield_now();
    }
}

fn unpark_on(inner: &Inner, target: usize) {
    let wake = {
        let mut g = inner.tasks[target].m.lock().unwrap();
        if g.parked {
            g.parked = false;
            g.permit = false;
            true
        } else {
            g.permit = true;
            false
        }
    };
    if wake {
        let mut s = inner.sched.lock().unwrap();
        s.injector.push_back(target);
        drop(s);
        inner.work_cv.notify_one();
    }
}

/// Task side of the quantum handoff: post `rep`, then sleep until a
/// worker grants the next `go`.
fn yield_to_worker(inner: &Inner, me: usize, rep: Report) {
    let ctrl = &inner.tasks[me];
    let mut g = ctrl.m.lock().unwrap();
    g.report = Some(rep);
    ctrl.cv_report.notify_one();
    while !g.go {
        g = ctrl.cv_go.wait(g).unwrap();
    }
    g.go = false;
}

/// Worker side: grant task `t` a quantum, wait for its report, and fold
/// the park decision in under the task's mutex (so it cannot race an
/// `unpark`).
fn resume(inner: &Inner, t: usize) -> Resumed {
    let ctrl = &inner.tasks[t];
    let mut g = ctrl.m.lock().unwrap();
    g.go = true;
    ctrl.cv_go.notify_one();
    loop {
        match g.report.take() {
            Some(Report::Yield) => return Resumed::Requeue,
            Some(Report::Done) => return Resumed::Done,
            Some(Report::WantPark) => {
                if g.permit {
                    // A wakeup raced the park: the task retries instead
                    // of suspending.
                    g.permit = false;
                    return Resumed::Requeue;
                }
                g.parked = true;
                return Resumed::Parked;
            }
            None => g = ctrl.cv_report.wait(g).unwrap(),
        }
    }
}

/// SplitMix64 — the same generator the model's random walker uses, so
/// seed provenance is uniform across the repo.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Worker `w`'s fixed victim order: a seed-derived permutation of the
/// other workers (Fisher–Yates driven by SplitMix64). Deterministic in
/// `(seed, w)` — re-running a job with the same config probes victims in
/// the same order at every steal attempt.
fn steal_order(workers: usize, seed: u64, w: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..workers).filter(|&v| v != w).collect();
    let mut st = seed ^ (w as u64).wrapping_mul(0xA076_1D64_78BD_642F);
    for i in (1..order.len()).rev() {
        let j = (splitmix64(&mut st) % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    order
}

fn worker_loop(inner: &Inner, w: usize) {
    let victims = steal_order(inner.workers, inner.seed, w);
    loop {
        let t = {
            let mut s = inner.sched.lock().unwrap();
            loop {
                if s.shutdown {
                    return;
                }
                // Own deque first (FIFO: message-driven tasks are woken in
                // arrival order), then the injector, then steal from the
                // back of each victim in seed order.
                if let Some(t) = s.locals[w].pop_front() {
                    break t;
                }
                if let Some(t) = s.injector.pop_front() {
                    break t;
                }
                if let Some(t) = victims.iter().find_map(|&v| s.locals[v].pop_back()) {
                    break t;
                }
                s = inner.work_cv.wait(s).unwrap();
            }
        };
        match resume(inner, t) {
            Resumed::Requeue => {
                let mut s = inner.sched.lock().unwrap();
                s.locals[w].push_back(t);
                drop(s);
                // Our deque is now non-empty: give an idle worker a
                // chance to steal it while we pick our own next task.
                inner.work_cv.notify_one();
            }
            Resumed::Parked => {}
            Resumed::Done => {
                let mut s = inner.sched.lock().unwrap();
                s.live -= 1;
                let all_done = s.live == 0;
                if all_done {
                    s.shutdown = true;
                }
                drop(s);
                if all_done {
                    inner.work_cv.notify_all();
                }
            }
        }
    }
}

/// Run `f(rank)` for every rank in `0..n` under the configured execution
/// mode and return the per-rank results in rank order, each wrapped in
/// the same `thread::Result` a `JoinHandle::join` would produce — callers
/// keep their existing `.expect("rank panicked")`-style policy.
///
/// Under [`ExecMode::Threads`] this is exactly the old launcher: one
/// scoped OS thread per rank. Under [`ExecMode::Tasks`] each rank becomes
/// a task as described in the module docs. In both modes rank `i` runs on
/// a thread that executes only rank `i` for the whole job, so
/// thread-local state (trace image id, model-gate thread id) is per-rank
/// state exactly as before.
pub fn run<T, F>(n: usize, cfg: &ExecConfig, f: F) -> Vec<std::thread::Result<T>>
where
    T: Send,
    F: Fn(usize) -> T + Send + Sync,
{
    match cfg.mode {
        ExecMode::Threads => std::thread::scope(|s| {
            let handles: Vec<_> = (0..n)
                .map(|rank| {
                    let f = &f;
                    s.spawn(move || f(rank))
                })
                .collect();
            handles.into_iter().map(|h| h.join()).collect()
        }),
        ExecMode::Tasks => run_tasks(n, cfg, &f),
    }
}

fn run_tasks<T, F>(n: usize, cfg: &ExecConfig, f: &F) -> Vec<std::thread::Result<T>>
where
    T: Send,
    F: Fn(usize) -> T + Send + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let workers = cfg.effective_workers(n);
    let inner = Arc::new(Inner {
        tasks: (0..n).map(|_| TaskCtrl::default()).collect(),
        sched: Mutex::new(SchedState {
            injector: VecDeque::new(),
            // Initial distribution: rank r starts on worker r % workers,
            // so the job begins spread across the pool.
            locals: {
                let mut locals = vec![VecDeque::new(); workers];
                for t in 0..n {
                    locals[t % workers].push_back(t);
                }
                locals
            },
            live: n,
            shutdown: false,
        }),
        work_cv: Condvar::new(),
        workers,
        seed: cfg.seed,
    });
    let results: Vec<Mutex<Option<std::thread::Result<T>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|s| {
        for rank in 0..n {
            let inner = Arc::clone(&inner);
            let results = &results;
            std::thread::Builder::new()
                .name(format!("caf-img-{rank}"))
                .stack_size(cfg.effective_stack())
                .spawn_scoped(s, move || {
                    CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&inner), rank)));
                    // First quantum is granted by a worker like any other.
                    {
                        let ctrl = &inner.tasks[rank];
                        let mut g = ctrl.m.lock().unwrap();
                        while !g.go {
                            g = ctrl.cv_go.wait(g).unwrap();
                        }
                        g.go = false;
                    }
                    let r = catch_unwind(AssertUnwindSafe(|| f(rank)));
                    *results[rank].lock().unwrap() = Some(r);
                    // A finished task can be what a parked peer was
                    // waiting on (e.g. a dropped channel): let everyone
                    // re-check before this task disappears.
                    unpark_all();
                    CURRENT.with(|c| *c.borrow_mut() = None);
                    // Final report; the worker retires the task. No
                    // wait-for-go follows — the thread exits.
                    let ctrl = &inner.tasks[rank];
                    let mut g = ctrl.m.lock().unwrap();
                    g.report = Some(Report::Done);
                    ctrl.cv_report.notify_one();
                })
                .expect("spawn image task");
        }
        for w in 0..workers {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name(format!("caf-worker-{w}"))
                .spawn_scoped(s, move || worker_loop(&inner, w))
                .expect("spawn executor worker");
        }
    });

    results
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("task finished without a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tasks_cfg(workers: usize) -> ExecConfig {
        ExecConfig { workers, ..ExecConfig::tasks() }
    }

    #[test]
    fn threads_and_tasks_compute_the_same_results() {
        for cfg in [ExecConfig::default(), tasks_cfg(0), tasks_cfg(1), tasks_cfg(3)] {
            let out: Vec<usize> =
                run(17, &cfg, |rank| rank * rank).into_iter().map(|r| r.unwrap()).collect();
            assert_eq!(out, (0..17).map(|r| r * r).collect::<Vec<_>>());
        }
    }

    #[test]
    fn park_unpark_pingpong_through_shared_mailboxes() {
        // A 2-task ping-pong over bare mailboxes: the receive loop is the
        // canonical try-then-park pattern the fabric uses. With a single
        // worker this deadlocks unless park really releases the worker.
        let mail: Vec<Mutex<VecDeque<u64>>> = (0..2).map(|_| Mutex::new(VecDeque::new())).collect();
        let rounds = 64u64;
        let out = run(2, &tasks_cfg(1), |rank| {
            let peer = 1 - rank;
            let mut got = 0u64;
            for i in 0..rounds {
                if rank == 0 {
                    mail[peer].lock().unwrap().push_back(i);
                    unpark(peer);
                }
                loop {
                    if let Some(v) = mail[rank].lock().unwrap().pop_front() {
                        got += v;
                        break;
                    }
                    park();
                }
                if rank == 1 {
                    mail[peer].lock().unwrap().push_back(i);
                    unpark(peer);
                }
            }
            got
        });
        let want: u64 = (0..rounds).sum();
        for r in out {
            assert_eq!(r.unwrap(), want);
        }
    }

    #[test]
    fn permit_prevents_lost_wakeup() {
        // Unpark strictly before the park: the permit must be banked and
        // the park must return immediately (with one worker, a lost
        // wakeup would hang the job).
        let out = run(2, &tasks_cfg(1), |rank| {
            if rank == 0 {
                unpark(1);
                0
            } else {
                // Give rank 0 a chance to run first.
                yield_now();
                park();
                1
            }
        });
        assert_eq!(out.len(), 2);
        for r in out {
            r.unwrap();
        }
    }

    #[test]
    fn panics_are_reported_per_rank() {
        let out = run(3, &tasks_cfg(2), |rank| {
            if rank == 1 {
                panic!("task 1 exploded");
            }
            rank
        });
        assert!(out[0].is_ok() && out[2].is_ok());
        let err = out[1].as_ref().unwrap_err();
        let msg = err.downcast_ref::<&str>().copied().unwrap_or("");
        assert!(msg.contains("exploded"), "unexpected payload: {msg:?}");
    }

    #[test]
    fn steal_order_is_deterministic_and_a_permutation() {
        for w in 0..6 {
            let a = steal_order(6, 42, w);
            let b = steal_order(6, 42, w);
            assert_eq!(a, b, "steal order must be a pure function of (seed, worker)");
            let mut sorted = a.clone();
            sorted.sort_unstable();
            let expect: Vec<usize> = (0..6).filter(|&v| v != w).collect();
            assert_eq!(sorted, expect);
        }
        assert_ne!(steal_order(6, 1, 0), steal_order(6, 2, 0), "seed must matter");
    }

    #[test]
    #[cfg_attr(miri, ignore = "spawns hundreds of OS carrier threads")]
    fn many_more_tasks_than_workers() {
        // 512 tasks on ≤ 8 workers, all parking once mid-flight on a
        // neighbour's wakeup ring.
        let n = 512;
        let flags: Vec<Mutex<bool>> = (0..n).map(|_| Mutex::new(false)).collect();
        let out = run(n, &ExecConfig::tasks(), |rank| {
            let next = (rank + 1) % n;
            *flags[next].lock().unwrap() = true;
            unpark(next);
            loop {
                if *flags[rank].lock().unwrap() {
                    break;
                }
                park();
            }
            rank
        });
        assert_eq!(out.into_iter().map(|r| r.unwrap()).sum::<usize>(), n * (n - 1) / 2);
    }

    #[test]
    fn outside_a_task_the_api_is_inert() {
        assert!(!on_task());
        assert_eq!(current_task(), None);
        unpark(0);
        unpark_all();
        yield_now();
    }
}
