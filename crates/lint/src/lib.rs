//! caf-lint: token-aware static analysis for the runtime crates.
//!
//! Replaces the old line-grep lints in `cargo xtask lint` with a
//! hand-rolled lexer (no `syn` — the workspace vendors no parser) that
//! strips comments/strings and tracks brace, function, and
//! `#[cfg(test)]` scope, then runs seven passes over the token stream:
//!
//! - **CAFL001 `blocking`** — blocking-point discipline: parking
//!   primitives in the modeled crates must route through the `sched.rs`
//!   announce-before-execute gate; emits the complete blocking-point
//!   inventory (`LINT_BLOCKING.json`) for the future work-stealing image
//!   scheduler.
//! - **CAFL002 `lock-across-park`** — no lock guard live across a
//!   gate/park call.
//! - **CAFL003 `atomic-ordering`** — every `Ordering::` use justified in
//!   `crates/lint/orderings.tsv`; flags SeqCst-by-default drift and
//!   stale table rows.
//! - **CAFL004 `unsafe`** — every `unsafe` carries a `// SAFETY:`.
//! - **CAFL005 `layering`** — substrates never reference upper layers;
//!   upper layers never deep-path into substrate internals (source
//!   `use`-graph plus a Cargo.toml dependency check).
//! - **CAFL006 `segment-direct`** / **CAFL007 `nondeterminism`** — the
//!   two pre-existing grep lints, migrated onto the scanner and now
//!   scope-aware (string literals, trailing comments, and code after a
//!   closed `#[cfg(test)]` module are handled correctly).
//!
//! Per-site escape hatch for every class: `// lint:allow(<class>)` on
//! the flagged line or the line above.

pub mod callgraph;
pub mod cfg;
pub mod checks;
pub mod inventory;
pub mod lexer;
pub mod ordering;
pub mod proto;
pub mod scope;
pub mod waitgraph;

use std::cell::RefCell;
use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

pub use inventory::BlockSite;
pub use ordering::OrderingTable;

/// Path of the ordering table, relative to the workspace root.
pub const ORDERINGS_TSV: &str = "crates/lint/orderings.tsv";
/// Path of the committed blocking inventory, relative to the root.
pub const BLOCKING_JSON: &str = "LINT_BLOCKING.json";
/// Path of the committed wait-graph inventory, relative to the root.
pub const WAITGRAPH_JSON: &str = "LINT_WAITGRAPH.json";

/// Every `lint:allow(<class>)` class a pass consults. The CAFL000 audit
/// flags markers naming anything else — and markers naming these that no
/// pass ever consulted at a matched site.
pub const KNOWN_CLASSES: &[&str] = &[
    "blocking",
    "lock-across-park",
    "atomic-ordering",
    "unsafe",
    "layering",
    "segment-direct",
    "nondeterminism",
    "sync-protocol",
    "wait-graph",
];

/// One lexed + scope-analyzed source file, with the set of allow
/// markers the passes actually *consumed* (consulted at a site whose
/// pattern matched) — the input of the CAFL000 stale-allow audit.
#[derive(Debug)]
pub struct FileUnit {
    pub rel: String,
    pub lx: lexer::Lexed,
    pub sc: scope::Scopes,
    /// (marker line, class) pairs that suppressed (or would have
    /// suppressed) a finding.
    pub consumed: RefCell<BTreeSet<(u32, String)>>,
}

impl FileUnit {
    pub fn new(rel: String, src: &str) -> FileUnit {
        let lx = lexer::lex(src);
        let sc = scope::analyze(&lx.tokens);
        FileUnit { rel, lx, sc, consumed: RefCell::new(BTreeSet::new()) }
    }

    /// Crate name for `crates/<name>/...` paths, else "".
    pub fn krate(&self) -> &str {
        self.rel.strip_prefix("crates/").and_then(|r| r.split('/').next()).unwrap_or("")
    }

    /// `lint:allow(<class>)` on `line` or the line above, recording
    /// consumption for the stale-allow audit.
    pub fn allow(&self, line: u32, class: &str) -> bool {
        let needle = format!("lint:allow({class})");
        if self.lx.comment_on(line).contains(&needle) {
            self.consumed.borrow_mut().insert((line, class.to_string()));
            return true;
        }
        if line > 1 && self.lx.comment_on(line - 1).contains(&needle) {
            self.consumed.borrow_mut().insert((line - 1, class.to_string()));
            return true;
        }
        false
    }
}

/// The whole workspace as analyzed units: the per-file passes run over
/// each file, then the interprocedural passes (call graph, CAFL008
/// sync-protocol, CAFL009 wait-graph) and the CAFL000 stale-allow audit
/// run over the set.
#[derive(Debug)]
pub struct Workspace {
    pub files: Vec<FileUnit>,
}

impl Workspace {
    pub fn from_sources(sources: Vec<(String, String)>) -> Workspace {
        let mut files: Vec<FileUnit> =
            sources.into_iter().map(|(rel, src)| FileUnit::new(rel, &src)).collect();
        files.sort_by(|a, b| a.rel.cmp(&b.rel));
        Workspace { files }
    }

    /// Run every pass: per-file (CAFL001..CAFL007), interprocedural
    /// (CAFL008/CAFL009), then the allow audit (CAFL000).
    pub fn analyze(&self, table: &OrderingTable, report: &mut Report) {
        for fu in &self.files {
            let ctx = checks::FileCtx::new(&fu.rel, &fu.lx, &fu.sc, &fu.consumed);
            checks::scan(&ctx, table, report);
            report.files_scanned += 1;
        }
        let graph = callgraph::CallGraph::build(&self.files);
        proto::sync_protocol_pass(self, &graph, report);
        let wg = waitgraph::build(self, &graph, report);
        report.waitgraph = Some(wg);
        allow_audit(self, report);
    }
}

/// CAFL000: every `lint:allow(<class>)` marker must still be load-
/// bearing. A marker no pass consulted at a matched site suppresses
/// nothing — burned-down suppressions must be deleted, not left to rot.
/// Backtick-quoted mentions (prose in doc comments) are ignored, as are
/// placeholder classes like `<class>`.
fn allow_audit(ws: &Workspace, report: &mut Report) {
    for fu in &ws.files {
        let consumed = fu.consumed.borrow();
        for (&line, text) in fu.lx.comments.iter() {
            let mut from = 0usize;
            while let Some(p) = text[from..].find("lint:allow(") {
                let abs = from + p;
                from = abs + "lint:allow(".len();
                // Prose guard: skip when the nearest non-`/ `-char to the
                // left is a backtick (covers "`lint:allow(x)`" and
                // "`// lint:allow(x)`").
                let prose = text[..abs]
                    .chars()
                    .rev()
                    .find(|c| !matches!(c, '/' | ' '))
                    .is_some_and(|c| c == '`');
                if prose {
                    continue;
                }
                let tail = &text[from..];
                let Some(close) = tail.find(')') else { continue };
                let class = &tail[..close];
                if class.is_empty()
                    || !class.chars().all(|c| c.is_ascii_lowercase() || c == '-')
                {
                    continue; // placeholder like `<class>`, not a marker
                }
                if !KNOWN_CLASSES.contains(&class) {
                    report.diags.push(Diag {
                        code: "CAFL000",
                        class: "allow-audit",
                        file: fu.rel.clone(),
                        line,
                        msg: format!(
                            "`lint:allow({class})` names no known lint class (valid: {})",
                            KNOWN_CLASSES.join(", ")
                        ),
                    });
                    continue;
                }
                if !consumed.contains(&(line, class.to_string())) {
                    report.diags.push(Diag {
                        code: "CAFL000",
                        class: "allow-audit",
                        file: fu.rel.clone(),
                        line,
                        msg: format!(
                            "stale `lint:allow({class})`: no {class} finding is suppressed \
                             here any more — delete the marker"
                        ),
                    });
                }
            }
        }
    }
}

/// One finding.
#[derive(Debug, Clone)]
pub struct Diag {
    /// Stable diagnostic code (`CAFL001`..`CAFL007`).
    pub code: &'static str,
    /// The `lint:allow(<class>)` class name.
    pub class: &'static str,
    /// Workspace-relative file.
    pub file: String,
    pub line: u32,
    pub msg: String,
}

impl Diag {
    /// `file:line: [code] msg` — the text format.
    pub fn text(&self) -> String {
        format!("{}:{}: [{}] {}", self.file, self.line, self.code, self.msg)
    }

    /// GitHub Actions annotation line.
    pub fn github(&self) -> String {
        format!(
            "::error file={},line={},title={}::{}",
            self.file,
            self.line,
            self.code,
            self.msg.replace('\n', " ")
        )
    }

    fn json(&self) -> String {
        format!(
            "{{\"code\": \"{}\", \"class\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
            self.code,
            self.class,
            self.file,
            self.line,
            json_escape(&self.msg)
        )
    }
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            '\t' => "\\t".chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Accumulated result of a scan.
#[derive(Debug, Default)]
pub struct Report {
    pub diags: Vec<Diag>,
    /// Blocking-point inventory entries (modeled crates, non-test code).
    pub sites: Vec<BlockSite>,
    pub files_scanned: usize,
    /// Ordering-table keys that matched a site (for staleness checks).
    pub ordering_keys_seen: BTreeSet<String>,
    /// The CAFL009 lock/park wait graph (workspace analyses only).
    pub waitgraph: Option<waitgraph::Graph>,
}

impl Report {
    /// Render all findings as a JSON array.
    pub fn diags_json(&self) -> String {
        let mut out = String::from("[\n");
        for (i, d) in self.diags.iter().enumerate() {
            out.push_str("  ");
            out.push_str(&d.json());
            if i + 1 < self.diags.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("]\n");
        out
    }

    /// Render the blocking inventory.
    pub fn inventory_json(&self) -> String {
        inventory::render(&self.sites)
    }

    /// Render the wait-graph inventory (`LINT_WAITGRAPH.json`); empty
    /// graph when only per-file scans ran.
    pub fn waitgraph_json(&self) -> String {
        match &self.waitgraph {
            Some(g) => g.render(),
            None => waitgraph::Graph::default().render(),
        }
    }

    /// Keys of `Ordering::` sites that have no table row — the lines to
    /// append (with TODO justifications) under `--update-orderings`.
    pub fn missing_ordering_rows(&self, table: &OrderingTable) -> Vec<String> {
        self.ordering_keys_seen
            .iter()
            .filter(|k| table.justification(k).is_none())
            .map(|k| format!("{k}\tTODO"))
            .collect()
    }
}

/// Scan one file's source under its workspace-relative path — the
/// per-file passes only (CAFL001..CAFL007); interprocedural analyses
/// need a [`Workspace`].
pub fn scan_file(rel: &str, src: &str, table: &OrderingTable, report: &mut Report) {
    let lx = lexer::lex(src);
    let sc = scope::analyze(&lx.tokens);
    let consumed = RefCell::new(BTreeSet::new());
    let ctx = checks::FileCtx::new(rel, &lx, &sc, &consumed);
    checks::scan(&ctx, table, report);
    report.files_scanned += 1;
}

/// Post-scan checks that need the whole workspace: stale ordering rows.
pub fn finish(table: &OrderingTable, report: &mut Report) {
    for key in table.keys() {
        if !report.ordering_keys_seen.contains(key) {
            let pretty = key.replace('\t', " ");
            report.diags.push(Diag {
                code: "CAFL003",
                class: "atomic-ordering",
                file: ORDERINGS_TSV.to_string(),
                line: 1,
                msg: format!(
                    "stale table row `{pretty}` matches no Ordering:: site; remove it"
                ),
            });
        }
    }
}

/// Load the ordering table from the workspace root.
pub fn load_table(root: &Path) -> Result<OrderingTable, String> {
    let path = root.join(ORDERINGS_TSV);
    match fs::read_to_string(&path) {
        Ok(text) => OrderingTable::parse(&text),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(OrderingTable::default()),
        Err(e) => Err(format!("reading {}: {e}", path.display())),
    }
}

/// Walk `crates/`, `tests/`, `examples/` under `root` and scan every
/// `.rs` file; then run the manifest-level layering check and the
/// staleness pass.
pub fn run_workspace(root: &Path) -> Result<Report, String> {
    let table = load_table(root)?;
    let mut report = Report::default();
    let mut files = Vec::new();
    for dir in ["crates", "tests", "examples"] {
        collect_rs_files(&root.join(dir), &mut files);
    }
    files.sort();
    let mut sources = Vec::with_capacity(files.len());
    for path in &files {
        let src = fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        sources.push((rel, src));
    }
    let ws = Workspace::from_sources(sources);
    ws.analyze(&table, &mut report);
    manifest_layering(root, &mut report);
    finish(&table, &mut report);
    Ok(report)
}

/// Substrate crate manifests must not declare runtime dependencies on
/// the layers above them (the source-level check cannot see a `path`
/// dependency that is merely declared but not yet imported).
fn manifest_layering(root: &Path, report: &mut Report) {
    const FORBIDDEN: &[&str] = &["caf", "caf-agg", "caf-hpcc", "caf-model"];
    for sub in checks::SUBSTRATE_CRATES {
        let rel = format!("crates/{sub}/Cargo.toml");
        let Ok(text) = fs::read_to_string(root.join(&rel)) else { continue };
        let mut in_deps = false;
        for (idx, line) in text.lines().enumerate() {
            let t = line.trim();
            if t.starts_with('[') {
                in_deps = t == "[dependencies]";
                continue;
            }
            if !in_deps {
                continue;
            }
            let name = t.split(['=', ' ', '.']).next().unwrap_or("");
            if FORBIDDEN.contains(&name) {
                report.diags.push(Diag {
                    code: "CAFL005",
                    class: "layering",
                    file: rel.clone(),
                    line: (idx + 1) as u32,
                    msg: format!(
                        "substrate crate `{sub}` declares a dependency on upper layer \
                         `{name}`: substrates must not depend on core/agg/hpcc/model"
                    ),
                });
            }
        }
    }
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}
