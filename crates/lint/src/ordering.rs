//! The checked-in atomic-ordering table (`crates/lint/orderings.tsv`).
//!
//! One row per `(file, fn, callee, ordering)` site class, tab-separated:
//!
//! ```text
//! crates/fabric/src/sched.rs<TAB>armed<TAB>load<TAB>Relaxed<TAB>fast-path flag; ...
//! ```
//!
//! Several textually identical sites (same file, same enclosing fn, same
//! atomic op, same ordering) share one row — the justification is about
//! the synchronization pattern, not the line number, and line numbers
//! would churn the table on every unrelated edit.

use std::collections::BTreeMap;

/// Parsed table: key -> justification.
#[derive(Debug, Default)]
pub struct OrderingTable {
    entries: BTreeMap<String, String>,
}

impl OrderingTable {
    /// The canonical key for one site class.
    pub fn key(file: &str, func: &str, callee: &str, ordering: &str) -> String {
        format!("{file}\t{func}\t{callee}\t{ordering}")
    }

    /// Parse the TSV text. `#`-comments and blank lines are skipped;
    /// every other line must have exactly five tab-separated fields with
    /// a non-empty justification.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut entries = BTreeMap::new();
        for (idx, line) in text.lines().enumerate() {
            let line_no = idx + 1;
            if line.trim().is_empty() || line.trim_start().starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = line.split('\t').collect();
            let [file, func, callee, ordering, just] = fields.as_slice() else {
                return Err(format!(
                    "orderings.tsv:{line_no}: expected 5 tab-separated fields \
                     (file, fn, op, ordering, justification), got {}",
                    fields.len()
                ));
            };
            if just.trim().is_empty() || just.trim() == "TODO" {
                return Err(format!(
                    "orderings.tsv:{line_no}: empty/TODO justification for {file} {func} \
                     {callee} {ordering}"
                ));
            }
            let key = Self::key(file, func, callee, ordering);
            if entries.insert(key.clone(), just.trim().to_string()).is_some() {
                return Err(format!("orderings.tsv:{line_no}: duplicate row for {key}"));
            }
        }
        Ok(OrderingTable { entries })
    }

    pub fn justification(&self, key: &str) -> Option<&str> {
        self.entries.get(key).map(String::as_str)
    }

    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(String::as_str)
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trip() {
        let t = OrderingTable::parse(
            "# comment\n\
             crates/a.rs\tf\tload\tRelaxed\tcounter, no sync\n\
             crates/a.rs\tg\tstore\tSeqCst\tSeqCst: total order with X\n",
        )
        .unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(
            t.justification(&OrderingTable::key("crates/a.rs", "f", "load", "Relaxed")),
            Some("counter, no sync")
        );
    }

    #[test]
    fn rejects_todo_and_duplicates() {
        assert!(OrderingTable::parse("a\tf\tload\tRelaxed\tTODO\n").is_err());
        let dup = "a\tf\tload\tRelaxed\tx\na\tf\tload\tRelaxed\ty\n";
        assert!(OrderingTable::parse(dup).is_err());
        assert!(OrderingTable::parse("a\tf\tload\n").is_err());
    }
}
