//! The lint passes. Each pass walks the token stream of one file with
//! its scope context and emits [`Diag`]s (stable code per class) and,
//! for the blocking pass, [`BlockSite`] inventory entries.
//!
//! | code    | class            | rule |
//! |---------|------------------|------|
//! | CAFL001 | `blocking`       | parking/blocking primitives in the modeled crates must carry gate evidence (the enclosing fn routes through `sched.rs`) |
//! | CAFL002 | `lock-across-park` | no `Mutex`/`RwLock` guard live across a gate/park call |
//! | CAFL003 | `atomic-ordering`  | every `Ordering::` use matches a checked-in justification table; SeqCst needs an explicit SeqCst rationale; stale entries flagged |
//! | CAFL004 | `unsafe`         | every `unsafe` token carries a `// SAFETY:` comment (same line or up to 3 lines above) |
//! | CAFL005 | `layering`       | substrates never reference core/agg/hpcc/model; other crates never deep-path into `caf_mpisim::x::` / `caf_gasnetsim::x::` internals |
//! | CAFL006 | `segment-direct` | raw `Segment` resolution only inside the instrumented substrate crates |
//! | CAFL007 | `nondeterminism` | no wall-clock / raw-spin primitives in the modeled crates outside `delay.rs` / `stall.rs` |
//!
//! Every class accepts a per-site `// lint:allow(<class>)` escape hatch
//! on the flagged line or the line above.

use std::cell::RefCell;
use std::collections::BTreeSet;

use crate::inventory::BlockSite;
use crate::lexer::{Kind, Lexed, Token};
use crate::ordering::OrderingTable;
use crate::scope::Scopes;
use crate::{Diag, Report};

/// Crates whose execution the `caf-model` scheduler gate controls; the
/// blocking / lock-across-park / atomic-ordering / nondeterminism
/// audits apply to these.
pub const MODELED_CRATES: &[&str] = &["fabric", "mpisim", "gasnetsim", "core", "agg", "sched"];

/// The substrate crates: own the instrumented segment entry points
/// (exempt from `segment-direct`) and must never depend on the layers
/// above them.
pub const SUBSTRATE_CRATES: &[&str] = &["fabric", "mpisim", "gasnetsim"];

/// Upper-layer crate idents substrates must never reference.
const FORBIDDEN_IN_SUBSTRATES: &[&str] = &["caf", "caf_agg", "caf_hpcc", "caf_model"];

/// Idents that count as evidence the enclosing function routes its
/// blocking through the scheduler gate.
const GATE_EVIDENCE: &[&str] =
    &["sched", "model_blocking", "yield_op", "yield_tick", "register_thread"];

/// Idents that count as evidence the enclosing function routes its
/// blocking through the caf-sched cooperative park API (the task
/// executor): a raw primitive next to a `caf_sched::park()` retry loop
/// is the Threads-mode arm of a dual-mode wait, not an unguarded block.
const PARK_EVIDENCE: &[&str] = &["caf_sched"];

/// Gate API entry points whose call sites belong in the inventory.
const GATE_CALLS: &[(&str, &str)] = &[
    ("yield_op", "gate_announce"),
    ("model_blocking", "gate_blocking"),
    ("yield_tick", "gate_tick"),
    ("register_thread", "gate_register"),
    ("wait_hint", "gate_wait_hint"),
];

/// caf-sched cooperative park API entry points (always path-qualified
/// `caf_sched::<fn>` at call sites — the bare idents are too generic to
/// match): the suspension/resume points of `ExecMode::Tasks`.
const PARK_CALLS: &[(&str, &str)] = &[
    ("park", "task_park"),
    ("unpark", "task_unpark"),
    ("unpark_all", "task_unpark_all"),
    ("yield_now", "task_yield"),
];

/// Raw segment resolution entry points (the `segment-direct` class).
const SEGMENT_PATTERNS: &[&str] = &["win_segment", "local_segment", "win_shared_query"];

pub(crate) struct FileCtx<'a> {
    pub rel: &'a str,
    pub lx: &'a Lexed,
    pub toks: &'a [Token],
    pub sc: &'a Scopes,
    pub modeled: bool,
    pub substrate: bool,
    pub is_sched: bool,
    pub is_delay: bool,
    pub nd_allowed_file: bool,
    /// (marker line, class) pairs consumed by `allow()` — feeds the
    /// CAFL000 stale-allow audit.
    consumed: &'a RefCell<BTreeSet<(u32, String)>>,
}

impl<'a> FileCtx<'a> {
    pub fn new(
        rel: &'a str,
        lx: &'a Lexed,
        sc: &'a Scopes,
        consumed: &'a RefCell<BTreeSet<(u32, String)>>,
    ) -> Self {
        let krate = rel
            .strip_prefix("crates/")
            .and_then(|r| r.split('/').next())
            .unwrap_or("");
        let file_name = rel.rsplit('/').next().unwrap_or(rel);
        FileCtx {
            rel,
            lx,
            toks: &lx.tokens,
            sc,
            modeled: MODELED_CRATES.contains(&krate),
            substrate: SUBSTRATE_CRATES.contains(&krate),
            is_sched: rel == "crates/fabric/src/sched.rs" || rel.starts_with("crates/sched/"),
            is_delay: rel == "crates/fabric/src/delay.rs",
            nd_allowed_file: matches!(file_name, "delay.rs" | "stall.rs"),
            consumed,
        }
    }

    fn ident(&self, i: usize) -> Option<&str> {
        self.toks
            .get(i)
            .filter(|t| t.kind == Kind::Ident)
            .map(|t| t.text.as_str())
    }

    fn punct(&self, i: usize, c: &str) -> bool {
        self.toks
            .get(i)
            .is_some_and(|t| t.kind == Kind::Punct && t.text == c)
    }

    /// `.name(` at token `i` (the dot); returns true for a method call.
    fn method_call(&self, i: usize, name: &str) -> bool {
        self.punct(i, ".") && self.ident(i + 1) == Some(name) && self.punct(i + 2, "(")
    }

    /// `.name()` — method call with no arguments.
    fn empty_method_call(&self, i: usize, name: &str) -> bool {
        self.method_call(i, name) && self.punct(i + 3, ")")
    }

    /// `a::b` starting at token `i`.
    fn path2(&self, i: usize, a: &str, b: &str) -> bool {
        self.ident(i) == Some(a)
            && self.punct(i + 1, ":")
            && self.punct(i + 2, ":")
            && self.ident(i + 3) == Some(b)
    }

    fn allow(&self, line: u32, class: &str) -> bool {
        let needle = format!("lint:allow({class})");
        if self.lx.comment_on(line).contains(&needle) {
            self.consumed.borrow_mut().insert((line, class.to_string()));
            return true;
        }
        if line > 1 && self.lx.comment_on(line - 1).contains(&needle) {
            self.consumed.borrow_mut().insert((line - 1, class.to_string()));
            return true;
        }
        false
    }

    /// Does the innermost named fn enclosing token `i` contain any of
    /// `idents` in its body?
    fn fn_has_ident(&self, i: usize, idents: &[&str]) -> bool {
        let Some(fi) = self.sc.fn_of[i] else { return false };
        let f = &self.sc.fns[fi];
        self.toks[f.body_start..=f.body_end]
            .iter()
            .any(|t| t.kind == Kind::Ident && idents.contains(&t.text.as_str()))
    }

    fn fn_name(&self, i: usize) -> String {
        self.sc.fn_of[i]
            .map(|fi| self.sc.fns[fi].name.clone())
            .unwrap_or_else(|| "-".into())
    }

    /// Index of the `}` matching the `{` at token `b`.
    fn matching_brace(&self, b: usize) -> usize {
        let open_depth = self.sc.depth[b];
        for j in b + 1..self.toks.len() {
            if self.toks[j].kind == Kind::Punct
                && self.toks[j].text == "}"
                && self.sc.depth[j] == open_depth + 1
            {
                return j;
            }
        }
        self.toks.len() - 1
    }
}

/// Run every pass over one lexed file.
pub(crate) fn scan(ctx: &FileCtx, table: &OrderingTable, report: &mut Report) {
    blocking_pass(ctx, report);
    lock_across_park_pass(ctx, report);
    ordering_pass(ctx, table, report);
    unsafe_pass(ctx, report);
    layering_pass(ctx, report);
    segment_direct_pass(ctx, report);
    nondeterminism_pass(ctx, report);
}

fn push(report: &mut Report, code: &'static str, class: &'static str, ctx: &FileCtx, line: u32, msg: String) {
    report.diags.push(Diag { code, class, file: ctx.rel.to_string(), line, msg });
}

// ---------------------------------------------------------------- CAFL001

/// Blocking-point discipline + the `LINT_BLOCKING.json` inventory.
///
/// Raw parking primitives (`Condvar`, channel `recv`/`recv_timeout`,
/// `thread::park`, `JoinHandle::join`, busy-retry loops) in the modeled
/// crates must live in a function that routes through the `sched.rs`
/// gate (announce-before-execute), be the gate itself, or carry
/// `// lint:allow(blocking)`. Software waits (`.wait(...)` on requests,
/// `recv_blocking` call sites) block *via* gated primitives underneath;
/// they are recorded in the inventory as `via-callee` but are not
/// violations — they are exactly the resume points a future
/// work-stealing image scheduler must know about.
fn blocking_pass(ctx: &FileCtx, report: &mut Report) {
    if !ctx.modeled {
        return;
    }
    let mut sites: Vec<(u32, &'static str, String, &'static str)> = Vec::new(); // line, kind, fn, gated
    let mut flagged: Vec<(u32, &'static str, String)> = Vec::new();

    let gate_status = |ctx: &FileCtx, i: usize, line: u32| -> &'static str {
        if ctx.is_sched || ctx.is_delay {
            "gate-internal"
        } else if ctx.fn_has_ident(i, PARK_EVIDENCE) {
            "park-api"
        } else if ctx.fn_has_ident(i, GATE_EVIDENCE) {
            "direct"
        } else if ctx.allow(line, "blocking") {
            "allowed"
        } else {
            "unguarded"
        }
    };

    let n = ctx.toks.len();
    for i in 0..n {
        if ctx.sc.in_test[i] {
            continue;
        }
        let line = ctx.toks[i].line;
        // Raw primitives that must be gated.
        let raw: Option<(&'static str, &'static str)> = if ctx.ident(i) == Some("Condvar")
            && ctx.punct(i + 1, ":")
        {
            Some(("condvar", "Condvar construction/wait loop"))
        } else if ctx.empty_method_call(i, "recv") {
            Some(("channel_recv", "blocking channel receive"))
        } else if ctx.method_call(i, "recv_timeout") {
            Some(("channel_recv_timeout", "blocking timed receive"))
        } else if ctx.path2(i, "thread", "park") || ctx.ident(i) == Some("park_timeout") {
            Some(("thread_park", "thread park"))
        } else if ctx.empty_method_call(i, "join") {
            Some(("thread_join", "thread join"))
        } else {
            None
        };
        if let Some((kind, what)) = raw {
            let status = gate_status(ctx, i, line);
            sites.push((line, kind, ctx.fn_name(i), status));
            if status == "unguarded" {
                flagged.push((line, kind, what.to_string()));
            }
            continue;
        }
        // Software waits: block via gated primitives underneath.
        if ctx.method_call(i, "wait")
            || ctx.method_call(i, "wait_timeout")
            || ctx.method_call(i, "wait_while")
        {
            let status = if ctx.is_sched { "gate-internal" } else { "via-callee" };
            sites.push((line, "request_wait", ctx.fn_name(i), status));
            continue;
        }
        if ctx.method_call(i, "recv_blocking") {
            sites.push((line, "recv_blocking", ctx.fn_name(i), "via-callee"));
            continue;
        }
        // Busy-retry loop: `loop { ... try_recv/poll ... }`.
        if ctx.ident(i) == Some("loop") && ctx.punct(i + 1, "{") {
            let end = ctx.matching_brace(i + 1);
            let polls = ctx.toks[i + 1..=end].iter().any(|t| {
                t.kind == Kind::Ident && (t.text == "try_recv" || t.text == "poll")
            });
            if polls {
                let status = if ctx.is_sched || ctx.is_delay {
                    "gate-internal"
                } else {
                    // try_recv/poll announce at every iteration, so the
                    // loop yields through the gate on each retry.
                    "via-callee"
                };
                sites.push((line, "spin_retry", ctx.fn_name(i), status));
            }
            continue;
        }
        // caf-sched park-API call sites: `caf_sched::park()` and friends
        // (matched path-qualified only — the bare idents are generic).
        if ctx.ident(i) == Some("caf_sched") && ctx.punct(i + 1, ":") && ctx.punct(i + 2, ":") {
            if let Some(name) = ctx.ident(i + 3) {
                if let Some((_, kind)) = PARK_CALLS.iter().find(|(n, _)| *n == name) {
                    if ctx.punct(i + 4, "(") {
                        let status =
                            if ctx.is_sched || ctx.is_delay { "gate-internal" } else { "park-api" };
                        sites.push((line, kind, ctx.fn_name(i), status));
                        continue;
                    }
                }
            }
        }
        // Gate API call sites (not their definitions in sched.rs).
        if let Some(name) = ctx.ident(i) {
            if let Some((_, kind)) = GATE_CALLS.iter().find(|(n, _)| *n == name) {
                let prev_is_fn = i > 0 && ctx.ident(i - 1) == Some("fn");
                if ctx.punct(i + 1, "(") && !prev_is_fn {
                    sites.push((line, kind, ctx.fn_name(i), "gate-api"));
                }
            }
        }
    }

    sites.sort();
    sites.dedup();
    for (line, kind, function, gated) in sites {
        report.sites.push(BlockSite {
            file: ctx.rel.to_string(),
            line,
            function,
            kind: kind.to_string(),
            gated: gated.to_string(),
        });
    }
    for (line, kind, what) in flagged {
        push(
            report,
            "CAFL001",
            "blocking",
            ctx,
            line,
            format!(
                "{what} ({kind}) in a modeled crate without scheduler-gate evidence in the \
                 enclosing fn: route it through sched.rs (announce-before-execute) or mark \
                 `// lint:allow(blocking)` with a reason"
            ),
        );
    }
}

// ---------------------------------------------------------------- CAFL002

/// A `Mutex`/`RwLock` guard bound by `let` and still live when the same
/// scope announces/parks on the scheduler gate or enters a blocking
/// primitive. Under the model every other image is frozen while this
/// thread holds the lock and parks — the classic recipe for the gate's
/// wait-for graph to gain an edge no schedule can break.
fn lock_across_park_pass(ctx: &FileCtx, report: &mut Report) {
    if !ctx.modeled || ctx.is_sched {
        // sched.rs transfers its own gate-mutex guard into Condvar::wait
        // by design; it is the park implementation, not a client.
        return;
    }
    for f in &ctx.sc.fns {
        if ctx.sc.in_test[f.body_start] {
            continue;
        }
        let mut guards: Vec<(String, u32)> = Vec::new(); // (name, depth at let)
        let mut i = f.body_start;
        while i <= f.body_end {
            let depth = ctx.sc.depth[i];
            guards.retain(|&(_, d)| depth >= d);
            let line = ctx.toks[i].line;
            // `let [mut] name = <expr with .lock()/.read()/.write()>;`
            if ctx.ident(i) == Some("let") {
                let mut j = i + 1;
                if ctx.ident(j) == Some("mut") {
                    j += 1;
                }
                if let Some(name) = ctx.ident(j) {
                    let name = name.to_string();
                    if ctx.punct(j + 1, "=") {
                        let mut k = j + 2;
                        let mut locks = false;
                        while k <= f.body_end && !ctx.punct(k, ";") {
                            if ctx.empty_method_call(k, "lock")
                                || ctx.empty_method_call(k, "read")
                                || ctx.empty_method_call(k, "write")
                            {
                                locks = true;
                            }
                            k += 1;
                        }
                        if locks && !ctx.allow(line, "lock-across-park") {
                            guards.push((name, depth));
                        }
                        i = k + 1;
                        continue;
                    }
                }
            }
            // Explicit release.
            if ctx.ident(i) == Some("drop") && ctx.punct(i + 1, "(") {
                if let Some(name) = ctx.ident(i + 2) {
                    if ctx.punct(i + 3, ")") {
                        guards.retain(|(g, _)| g != name);
                    }
                }
            }
            // Park points while a guard is live. `caf_sched::park` /
            // `yield_now` suspend the whole task: a guard held across
            // them pins every other image mapped to this worker.
            let parks = matches!(ctx.ident(i), Some("yield_op" | "model_blocking" | "yield_tick"))
                && ctx.punct(i + 1, "(")
                || ctx.path2(i, "caf_sched", "park")
                || ctx.path2(i, "caf_sched", "yield_now")
                || ctx.empty_method_call(i, "recv")
                || ctx.method_call(i, "recv_timeout")
                || ctx.method_call(i, "recv_blocking")
                || ctx.method_call(i, "wait")
                || ctx.empty_method_call(i, "join");
            if parks && !guards.is_empty() && !ctx.allow(line, "lock-across-park") {
                let held: Vec<&str> = guards.iter().map(|(g, _)| g.as_str()).collect();
                let at = ctx
                    .ident(i)
                    .or_else(|| ctx.ident(i + 1))
                    .unwrap_or("block");
                push(
                    report,
                    "CAFL002",
                    "lock-across-park",
                    ctx,
                    line,
                    format!(
                        "lock guard(s) `{}` held across blocking/gate call `{at}` in fn \
                         `{}`: drop the guard first, or mark `// lint:allow(lock-across-park)`",
                        held.join("`, `"),
                        f.name
                    ),
                );
            }
            i += 1;
        }
    }
}

// ---------------------------------------------------------------- CAFL003

/// Every `Ordering::<X>` use in non-test code of the modeled crates must
/// match a row of `crates/lint/orderings.tsv` keyed by
/// `(file, fn, callee, ordering)` and carrying a one-line justification.
/// SeqCst rows must *say* "SeqCst" in their justification (no
/// SeqCst-by-default drift: strengthening an ordering means writing down
/// why the strongest one is needed). Table rows matching no site are
/// flagged as stale so the table never outlives the code.
fn ordering_pass(ctx: &FileCtx, table: &OrderingTable, report: &mut Report) {
    if !ctx.modeled {
        return;
    }
    const ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];
    // Track the callee of the innermost open paren group.
    let mut paren_stack: Vec<String> = Vec::new();
    for i in 0..ctx.toks.len() {
        match (ctx.toks[i].kind, ctx.toks[i].text.as_str()) {
            (Kind::Punct, "(") => {
                let callee = if i > 0 && ctx.toks[i - 1].kind == Kind::Ident {
                    ctx.toks[i - 1].text.clone()
                } else {
                    String::from("-")
                };
                paren_stack.push(callee);
            }
            (Kind::Punct, ")") => {
                paren_stack.pop();
            }
            _ => {}
        }
        if ctx.sc.in_test[i] {
            continue;
        }
        if ctx.ident(i) != Some("Ordering") || !ctx.punct(i + 1, ":") || !ctx.punct(i + 2, ":") {
            continue;
        }
        let Some(ord) = ctx.ident(i + 3) else { continue };
        if !ORDERINGS.contains(&ord) {
            continue;
        }
        let line = ctx.toks[i].line;
        if ctx.allow(line, "atomic-ordering") {
            continue;
        }
        let callee = paren_stack.last().cloned().unwrap_or_else(|| "-".into());
        let key = OrderingTable::key(ctx.rel, &ctx.fn_name(i), &callee, ord);
        report.ordering_keys_seen.insert(key.clone());
        match table.justification(&key) {
            None => push(
                report,
                "CAFL003",
                "atomic-ordering",
                ctx,
                line,
                format!(
                    "Ordering::{ord} in `{callee}(..)` (fn `{}`) has no row in \
                     crates/lint/orderings.tsv; add `{key}<TAB><justification>` \
                     (or run `cargo xtask lint --update-orderings` to stub it)",
                    ctx.fn_name(i)
                ),
            ),
            Some(j) if ord == "SeqCst" && !j.contains("SeqCst") => push(
                report,
                "CAFL003",
                "atomic-ordering",
                ctx,
                line,
                format!(
                    "Ordering::SeqCst in `{callee}(..)` justified without mentioning SeqCst: \
                     say why the strongest ordering is required (SeqCst-by-default drift)"
                ),
            ),
            Some(_) => {}
        }
    }
}

// ---------------------------------------------------------------- CAFL004

/// Every `unsafe` token (block, fn, impl, trait) needs a `// SAFETY:`
/// comment on the same line or within the three lines above.
fn unsafe_pass(ctx: &FileCtx, report: &mut Report) {
    for i in 0..ctx.toks.len() {
        if ctx.ident(i) != Some("unsafe") {
            continue;
        }
        let line = ctx.toks[i].line;
        if ctx.allow(line, "unsafe") {
            continue;
        }
        let documented = (0..=3).any(|k| {
            line > k && ctx.lx.comment_on(line - k).contains("SAFETY:")
        });
        if !documented {
            push(
                report,
                "CAFL004",
                "unsafe",
                ctx,
                line,
                "`unsafe` without a `// SAFETY:` comment (same line or up to 3 lines above): \
                 state the invariant that makes this sound, or mark `// lint:allow(unsafe)`"
                    .into(),
            );
        }
    }
}

// ---------------------------------------------------------------- CAFL005

/// Use-graph layering. Substrates (`fabric`, `mpisim`, `gasnetsim`)
/// never name the layers above them (`caf`, `caf_agg`, `caf_hpcc`,
/// `caf_model`); everything else reaches `caf_mpisim` / `caf_gasnetsim`
/// only through their crate-root re-exports, never `crate::module::`
/// deep paths (a lowercase path segment right after the crate name).
fn layering_pass(ctx: &FileCtx, report: &mut Report) {
    for i in 0..ctx.toks.len() {
        let Some(id) = ctx.ident(i) else { continue };
        let line = ctx.toks[i].line;
        if ctx.substrate {
            if FORBIDDEN_IN_SUBSTRATES.contains(&id)
                && ctx.punct(i + 1, ":")
                && ctx.punct(i + 2, ":")
                && !ctx.allow(line, "layering")
            {
                push(
                    report,
                    "CAFL005",
                    "layering",
                    ctx,
                    line,
                    format!(
                        "substrate crate references upper layer `{id}::`: substrates must \
                         not depend on core/agg/hpcc/model"
                    ),
                );
            }
        } else if matches!(id, "caf_mpisim" | "caf_gasnetsim")
            && ctx.punct(i + 1, ":")
            && ctx.punct(i + 2, ":")
        {
            if let Some(seg) = ctx.ident(i + 3) {
                let deep = seg.starts_with(|c: char| c.is_ascii_lowercase())
                    && ctx.punct(i + 4, ":")
                    && ctx.punct(i + 5, ":");
                if deep && !ctx.allow(line, "layering") {
                    push(
                        report,
                        "CAFL005",
                        "layering",
                        ctx,
                        line,
                        format!(
                            "deep path `{id}::{seg}::` reaches into substrate internals: \
                             use (or add) a crate-root re-export instead"
                        ),
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------- CAFL006

/// Raw segment resolution outside the instrumented substrate crates
/// bypasses the caf-trace events and caf-check sanitizer hooks.
fn segment_direct_pass(ctx: &FileCtx, report: &mut Report) {
    if ctx.substrate {
        return;
    }
    for i in 0..ctx.toks.len() {
        let line = ctx.toks[i].line;
        let pat: Option<String> = if let Some(id) = ctx.ident(i) {
            (SEGMENT_PATTERNS.contains(&id) && ctx.punct(i + 1, "("))
                .then(|| format!("{id}("))
        } else if ctx.method_call(i, "segment") {
            Some(".segment(".into())
        } else {
            None
        };
        if let Some(pat) = pat {
            if !ctx.allow(line, "segment-direct") {
                push(
                    report,
                    "CAFL006",
                    "segment-direct",
                    ctx,
                    line,
                    format!(
                        "direct segment access `{pat}` outside the instrumented substrate \
                         entry points (route through the mpisim/gasnetsim API, or mark \
                         `// lint:allow(segment-direct)`)"
                    ),
                );
            }
        }
    }
}

// ---------------------------------------------------------------- CAFL007

/// Wall-clock / raw-spin primitives in the modeled crates make schedules
/// depend on real time, which breaks replay under the scheduler gate.
/// Timing is centralized in `fabric/src/delay.rs` and the watchdog in
/// `trace/src/stall.rs`.
fn nondeterminism_pass(ctx: &FileCtx, report: &mut Report) {
    if !ctx.modeled || ctx.nd_allowed_file {
        return;
    }
    for i in 0..ctx.toks.len() {
        if ctx.sc.in_test[i] {
            continue;
        }
        let pat: Option<&str> = if ctx.path2(i, "thread", "sleep") {
            Some("thread::sleep")
        } else if ctx.path2(i, "Instant", "now") {
            Some("Instant::now")
        } else if ctx.ident(i) == Some("spin_loop") && ctx.punct(i + 1, "(") {
            Some("spin_loop(")
        } else {
            None
        };
        if let Some(pat) = pat {
            let line = ctx.toks[i].line;
            if !ctx.allow(line, "nondeterminism") {
                push(
                    report,
                    "CAFL007",
                    "nondeterminism",
                    ctx,
                    line,
                    format!(
                        "nondeterministic `{pat}` in a modeled crate (use the gated \
                         primitives in fabric/src/delay.rs, or mark \
                         `// lint:allow(nondeterminism)`)"
                    ),
                );
            }
        }
    }
}
