//! Workspace call graph over the lexed files.
//!
//! Nodes are the named functions the scope pass found; edges come from
//! call-site extraction with heuristic resolution:
//!
//! - `foo(..)` / `path::foo(..)` and `.foo(..)` resolve *by name* to
//!   every workspace fn called `foo` (trait methods over-approximate to
//!   all impls).
//! - A method call on `self` whose name has a unique candidate in the
//!   same file narrows to that candidate (the receiver-type heuristic
//!   that matters in practice: `self.helper(..)` inside one impl block).
//! - Names on the [`DENY`] list never resolve: ubiquitous std methods
//!   (`clone`, `lock`, `map`, ...) would connect everything to anything
//!   that happens to share the name, and the blocking primitives
//!   (`recv`, `wait`, `park`, ...) are modeled as *local events* by the
//!   passes, not as calls.
//! - Candidate sets larger than [`MAX_CANDIDATES`] are dropped — an
//!   edge to six same-named fns is noise, not resolution.
//! - `// lint:calls(a, b)` on a call line (or the line above) adds
//!   explicit edges to every fn named `a` / `b` — the escape hatch for
//!   dynamic dispatch (fn pointers, `dyn Trait`) the heuristics cannot
//!   see.

use std::collections::BTreeMap;

use crate::lexer::Kind;
use crate::FileUnit;

/// Method/function names never resolved through the name heuristic.
pub const DENY: &[&str] = &[
    // std surface that would alias workspace fns by accident
    "new", "default", "clone", "cloned", "copied", "drop", "len", "is_empty", "iter",
    "iter_mut", "into_iter", "next", "push", "pop", "insert", "remove", "get", "get_mut",
    "contains", "contains_key", "entry", "or_default", "or_insert", "keys", "values", "map",
    "filter", "filter_map", "flat_map", "fold", "for_each", "any", "all", "find", "position",
    "rev", "chain", "zip", "enumerate", "take", "skip", "collect", "extend", "split", "trim",
    "parse", "unwrap", "unwrap_or", "unwrap_or_else", "unwrap_or_default", "expect", "ok",
    "err", "is_some", "is_none", "is_ok", "is_err", "and_then", "or_else", "map_err",
    "as_ref", "as_mut", "as_str", "as_bytes", "as_slice", "to_string", "to_owned", "to_vec",
    "into", "from", "try_from", "try_into", "borrow", "borrow_mut", "load", "store", "swap",
    "fetch_add", "fetch_sub", "fetch_or", "fetch_and", "fetch_xor", "compare_exchange",
    "compare_exchange_weak", "min", "max", "abs", "pow", "fmt", "eq", "ne", "cmp",
    "partial_cmp", "hash", "index", "deref", "sort", "sort_by", "sort_by_key", "dedup",
    "retain", "clear", "resize", "fill", "copy_from_slice", "clone_from_slice", "chunks",
    "windows", "first", "last", "starts_with", "ends_with", "replace", "bytes", "lines",
    "flush", "write_all", "send", "spawn", "sleep", "format", "println", "eprintln",
    "assert", "assert_eq", "assert_ne", "panic", "matches", "vec", "clamp", "rem_euclid",
    "checked_sub", "checked_add", "saturating_sub", "saturating_add", "wrapping_add",
    "wrapping_mul", "wrapping_sub", "to_le_bytes", "from_le_bytes", "set", "get_or_init",
    "with", "take_while", "skip_while", "sum", "product", "count", "step_by", "cycle",
    // blocking / lock primitives: local events for the passes, not edges
    "lock", "read", "write", "try_lock", "try_read", "try_write", "recv", "try_recv",
    "recv_timeout", "wait", "wait_timeout", "wait_while", "notify_one", "notify_all",
    "join", "park", "park_timeout", "unpark", "unpark_all", "yield_now",
];

/// Over-approximation cut: more same-named candidates than this and the
/// site stays unresolved.
pub const MAX_CANDIDATES: usize = 4;

/// One named fn in the workspace.
#[derive(Debug)]
pub struct FnNode {
    /// Index into the workspace file list.
    pub file: usize,
    /// Index into that file's `Scopes::fns`.
    pub scope_fn: usize,
    pub name: String,
    /// Token indices of the body braces (inclusive).
    pub body: (usize, usize),
    /// Line of the opening brace.
    pub line: u32,
}

/// One resolved call site.
#[derive(Debug, Clone, Copy)]
pub struct CallSite {
    /// Callee as an index into `CallGraph::nodes`.
    pub callee: usize,
    /// Token index of the callee name at the call site.
    pub token: usize,
    pub line: u32,
}

#[derive(Debug)]
pub struct CallGraph {
    pub nodes: Vec<FnNode>,
    pub by_name: BTreeMap<String, Vec<usize>>,
    /// Outgoing resolved call sites per node (same indexing as `nodes`).
    pub calls: Vec<Vec<CallSite>>,
    /// (file index, scope fn index) -> node index.
    pub node_of: BTreeMap<(usize, usize), usize>,
}

impl CallGraph {
    /// Build the graph over every named fn in `files`.
    pub fn build(files: &[FileUnit]) -> CallGraph {
        let mut nodes = Vec::new();
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut node_of = BTreeMap::new();
        for (fi, fu) in files.iter().enumerate() {
            for (si, f) in fu.sc.fns.iter().enumerate() {
                let idx = nodes.len();
                nodes.push(FnNode {
                    file: fi,
                    scope_fn: si,
                    name: f.name.clone(),
                    body: (f.body_start, f.body_end),
                    line: fu.lx.tokens.get(f.body_start).map(|t| t.line).unwrap_or(0),
                });
                by_name.entry(f.name.clone()).or_default().push(idx);
                node_of.insert((fi, si), idx);
            }
        }
        let mut calls = vec![Vec::new(); nodes.len()];
        for n in 0..nodes.len() {
            let node = &nodes[n];
            let fu = &files[node.file];
            let toks = &fu.lx.tokens;
            let (bs, be) = node.body;
            let mut i = bs;
            while i <= be.min(toks.len().saturating_sub(1)) {
                // Only tokens directly in this fn (not nested fns).
                if fu.sc.fn_of.get(i) != Some(&Some(node.scope_fn)) {
                    i += 1;
                    continue;
                }
                let t = &toks[i];
                if t.kind == Kind::Ident
                    && toks.get(i + 1).is_some_and(|u| u.kind == Kind::Punct && u.text == "(")
                {
                    let name = t.text.as_str();
                    let prev = i.checked_sub(1).map(|p| &toks[p]);
                    let is_def = prev.is_some_and(|p| p.kind == Kind::Ident && p.text == "fn");
                    let is_method =
                        prev.is_some_and(|p| p.kind == Kind::Punct && p.text == ".");
                    if !is_def && !is_keyword(name) {
                        if let Some(cands) = resolve(&by_name, &nodes, name, node, is_method, {
                            // receiver ident two tokens back for `.m(`
                            if is_method {
                                i.checked_sub(2).and_then(|p| {
                                    toks.get(p)
                                        .filter(|u| u.kind == Kind::Ident)
                                        .map(|u| u.text.as_str())
                                })
                            } else {
                                None
                            }
                        }) {
                            for c in cands {
                                if c != n {
                                    calls[n].push(CallSite { callee: c, token: i, line: t.line });
                                }
                            }
                        }
                    }
                    // `lint:calls(a, b)` marker: explicit edges.
                    for target in marker_targets(fu, t.line) {
                        if let Some(list) = by_name.get(&target) {
                            for &c in list {
                                if c != n
                                    && !calls[n]
                                        .iter()
                                        .any(|cs| cs.callee == c && cs.line == t.line)
                                {
                                    calls[n].push(CallSite { callee: c, token: i, line: t.line });
                                }
                            }
                        }
                    }
                }
                i += 1;
            }
        }
        CallGraph { nodes, by_name, calls, node_of }
    }

    /// Node index of a scope fn, if it was registered.
    pub fn node(&self, file: usize, scope_fn: usize) -> Option<usize> {
        self.node_of.get(&(file, scope_fn)).copied()
    }
}

fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "while" | "for" | "match" | "loop" | "return" | "let" | "fn" | "move" | "in"
            | "as" | "mut" | "ref" | "break" | "continue" | "else" | "unsafe" | "impl" | "use"
            | "pub" | "mod" | "where" | "Some" | "None" | "Ok" | "Err" | "Box" | "Vec"
            | "String" | "debug_assert" | "debug_assert_eq"
    )
}

/// Resolve a call by name. Returns `None` when unresolved.
fn resolve(
    by_name: &BTreeMap<String, Vec<usize>>,
    nodes: &[FnNode],
    name: &str,
    caller: &FnNode,
    is_method: bool,
    receiver: Option<&str>,
) -> Option<Vec<usize>> {
    if DENY.contains(&name) {
        return None;
    }
    let cands = by_name.get(name)?;
    // Receiver-type heuristic: `self.m(..)` with a unique same-file
    // candidate narrows to it.
    if is_method && receiver == Some("self") {
        let same_file: Vec<usize> =
            cands.iter().copied().filter(|&c| nodes[c].file == caller.file).collect();
        if same_file.len() == 1 {
            return Some(same_file);
        }
    }
    if cands.len() > MAX_CANDIDATES {
        return None;
    }
    Some(cands.clone())
}

/// Targets named by a `// lint:calls(a, b)` marker on `line` or above.
fn marker_targets(fu: &FileUnit, line: u32) -> Vec<String> {
    let mut out = Vec::new();
    for l in [line, line.saturating_sub(1)] {
        let text = fu.lx.comment_on(l);
        let mut rest = text;
        while let Some(p) = rest.find("lint:calls(") {
            let tail = &rest[p + "lint:calls(".len()..];
            if let Some(close) = tail.find(')') {
                for name in tail[..close].split(',') {
                    let name = name.trim();
                    if !name.is_empty() {
                        out.push(name.to_string());
                    }
                }
                rest = &tail[close + 1..];
            } else {
                break;
            }
        }
        if l == 0 {
            break;
        }
    }
    out.sort();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FileUnit;

    fn ws(files: &[(&str, &str)]) -> Vec<FileUnit> {
        files.iter().map(|(r, s)| FileUnit::new(r.to_string(), s)).collect()
    }

    fn edges(files: &[(&str, &str)]) -> Vec<(String, String)> {
        let units = ws(files);
        let g = CallGraph::build(&units);
        let mut out = Vec::new();
        for n in 0..g.nodes.len() {
            for cs in &g.calls[n] {
                out.push((g.nodes[n].name.clone(), g.nodes[cs.callee].name.clone()));
            }
        }
        out.sort();
        out.dedup();
        out
    }

    #[test]
    fn bare_and_path_calls_resolve_by_name() {
        let e = edges(&[
            ("crates/a/src/lib.rs", "pub fn alpha() { beta(); helpers::gamma(); }"),
            ("crates/a/src/helpers.rs", "pub fn beta() {} pub fn gamma() {}"),
        ]);
        assert!(e.contains(&("alpha".into(), "beta".into())));
        assert!(e.contains(&("alpha".into(), "gamma".into())));
    }

    #[test]
    fn method_calls_over_approximate_across_impls() {
        let e = edges(&[
            (
                "crates/a/src/lib.rs",
                "impl A { fn step(&self) { one(); } } impl B { fn step(&self) { two(); } } \
                 fn drive(x: &A) { x.step(); }",
            ),
            ("crates/a/src/x.rs", "fn one() {} fn two() {}"),
        ]);
        // drive -> both step impls (trait/inherent over-approximation).
        assert_eq!(e.iter().filter(|(f, t)| f == "drive" && t == "step").count(), 1);
        let units = ws(&[
            (
                "crates/a/src/lib.rs",
                "impl A { fn step(&self) { one(); } } impl B { fn step(&self) { two(); } } \
                 fn drive(x: &A) { x.step(); }",
            ),
            ("crates/a/src/x.rs", "fn one() {} fn two() {}"),
        ]);
        let g = CallGraph::build(&units);
        let drive = g.by_name["drive"][0];
        assert_eq!(g.calls[drive].len(), 2, "both `step` candidates kept");
    }

    #[test]
    fn deny_listed_names_never_resolve() {
        let e = edges(&[
            ("crates/a/src/lib.rs", "fn caller(m: &M) { let g = m.lock(); g.clone(); }"),
            ("crates/b/src/lib.rs", "fn lock() { secret(); } fn clone() {} fn secret() {}"),
        ]);
        assert!(e.iter().all(|(f, _)| f != "caller"), "deny-listed: {e:?}");
    }

    #[test]
    fn self_method_narrows_to_same_file_candidate() {
        let units = ws(&[
            (
                "crates/a/src/lib.rs",
                "impl A { fn run(&self) { self.helper(); } fn helper(&self) { a_side(); } }",
            ),
            ("crates/b/src/lib.rs", "impl B { fn helper(&self) { b_side(); } }"),
        ]);
        let g = CallGraph::build(&units);
        let run = g.by_name["run"][0];
        let callees: Vec<_> =
            g.calls[run].iter().map(|c| (g.nodes[c.callee].file, &g.nodes[c.callee].name)).collect();
        assert_eq!(callees.len(), 1);
        assert_eq!(*callees[0].1, "helper");
        assert_eq!(callees[0].0, 0, "narrowed to the same-file impl");
    }

    #[test]
    fn lint_calls_marker_adds_dynamic_dispatch_edges() {
        let e = edges(&[(
            "crates/a/src/lib.rs",
            "fn target_a() {} fn target_b() {}\n\
             fn dispatch(f: fn()) {\n\
                 // lint:calls(target_a, target_b)\n\
                 f();\n\
             }",
        )]);
        assert!(e.contains(&("dispatch".into(), "target_a".into())));
        assert!(e.contains(&("dispatch".into(), "target_b".into())));
    }

    #[test]
    fn oversized_candidate_sets_stay_unresolved() {
        let src_many: String = (0..6)
            .map(|i| format!("mod m{i} {{ pub fn popular() {{}} }}\n"))
            .collect::<String>()
            + "fn caller() { popular(); }";
        let e = edges(&[("crates/a/src/lib.rs", &src_many)]);
        assert!(e.iter().all(|(f, _)| f != "caller"), "{e:?}");
    }
}
