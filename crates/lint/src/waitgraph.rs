//! CAFL009 `wait-graph`: an interprocedural lock/park order graph over
//! the modeled crates, committed as `LINT_WAITGRAPH.json`.
//!
//! CAFL002 catches a guard held across a park **in the same function**.
//! The deadlocks that survive review are the other kind: `f` takes a
//! `Mutex` and calls `g`, `g` calls `h`, and `h` parks on the scheduler
//! gate or a channel — the wait-for graph gains an edge no schedule can
//! break, three frames away from the `lock()`. This pass builds the
//! whole graph statically:
//!
//! - **Nodes** are lock acquisition classes — `lock:<crate>/<receiver>`
//!   for every `.lock()`/`.read()`/`.write()` (empty-arg) in the modeled
//!   crates — and park classes — `park:<crate>/<kind>` for the same park
//!   set CAFL001's blocking inventory tracks (channel `recv*`, condvar
//!   `wait*`, `join`, `thread::park`, the `caf_sched` park API, and the
//!   gate calls `yield_op`/`model_blocking`/`yield_tick`).
//! - **Edges** are held-across facts. While a let-bound guard is live
//!   (CAFL002's tracking: depth-scoped, `drop()`-released), a direct
//!   park yields an `intra` lock→park edge (CAFL002's domain — recorded,
//!   not re-flagged) and a direct acquisition yields a lock→lock order
//!   edge. A *call* to a function whose transitive summary (fixpoint
//!   union over the call graph) contains parks or locks yields `inter`
//!   edges — and an `inter` lock→park edge is a CAFL009 finding unless
//!   the call site carries `// lint:allow(wait-graph)` (then the edge is
//!   committed with `"status": "allowed"` so reviewers see it).
//! - **Cycles** of length ≥ 2 in the lock→lock order graph are
//!   findings (AB/BA ordering inversions). Self-loops are recorded but
//!   not flagged: same-named sharded locks (`shards[i]`/`shards[j]`)
//!   share a node and a self-edge there is usually disjoint shards, not
//!   re-entry.
//!
//! The graph is rendered deterministically and byte-compared against
//! the committed `LINT_WAITGRAPH.json` on every `cargo xtask lint` run;
//! its `inter`/`intra` edges seed the `waitgraph_targeted` caf-model
//! scenario, which walks schedules that maximize contention on exactly
//! the statically-found held-across edges.
//!
//! `crates/fabric/src/sched.rs`, `crates/fabric/src/delay.rs`, and
//! `crates/sched/` are excluded: they *are* the park implementation
//! (the gate transfers its own mutex into `Condvar::wait` by design).

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::CallGraph;
use crate::checks::MODELED_CRATES;
use crate::lexer::Kind;
use crate::{Diag, Report, Workspace};

/// One node: a lock class or a park class.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Node {
    pub id: String,
    pub kind: String, // "lock" | "park"
    pub file: String,
    pub line: u32,
    pub function: String,
}

/// One held-across (lock→park) or order (lock→lock) edge.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Edge {
    pub from: String,
    pub to: String,
    /// "intra" (same fn) or "inter" (through at least one call).
    pub scope: String,
    pub file: String,
    pub line: u32,
    pub function: String,
    /// The park/lock name (intra) or the callee carrying it (inter).
    pub via: String,
    /// "ok" (order / intra record), "flagged", or "allowed".
    pub status: String,
}

/// The committed wait graph (`caf-lint-waitgraph-v1`).
#[derive(Debug, Default)]
pub struct Graph {
    pub nodes: Vec<Node>,
    pub edges: Vec<Edge>,
}

impl Graph {
    /// Render deterministically (sorted, one row per line — reviewable
    /// diffs, byte-compared in CI).
    pub fn render(&self) -> String {
        let mut nodes: Vec<&Node> = self.nodes.iter().collect();
        nodes.sort();
        let mut edges: Vec<&Edge> = self.edges.iter().collect();
        edges.sort();
        let mut out = String::from("{\n  \"schema\": \"caf-lint-waitgraph-v1\",\n  \"nodes\": [\n");
        for (i, n) in nodes.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"id\": \"{}\", \"kind\": \"{}\", \"file\": \"{}\", \"line\": {}, \"function\": \"{}\"}}{}\n",
                n.id,
                n.kind,
                n.file,
                n.line,
                n.function,
                if i + 1 < nodes.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n  \"edges\": [\n");
        for (i, e) in edges.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"from\": \"{}\", \"to\": \"{}\", \"scope\": \"{}\", \"file\": \"{}\", \"line\": {}, \"function\": \"{}\", \"via\": \"{}\", \"status\": \"{}\"}}{}\n",
                e.from,
                e.to,
                e.scope,
                e.file,
                e.line,
                e.function,
                e.via,
                e.status,
                if i + 1 < edges.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Transitive lock/park content of one call-graph node.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct FnSummary {
    parks: BTreeSet<String>,
    locks: BTreeSet<String>,
}

fn excluded(rel: &str) -> bool {
    rel == "crates/fabric/src/sched.rs"
        || rel == "crates/fabric/src/delay.rs"
        || rel.starts_with("crates/sched/")
}

fn modeled(rel: &str) -> Option<&str> {
    let rest = rel.strip_prefix("crates/")?;
    let krate = &rest[..rest.find('/')?];
    MODELED_CRATES.contains(&krate).then_some(krate)
}

/// Token-level helpers over one file.
struct F<'a> {
    toks: &'a [crate::lexer::Token],
}

impl<'a> F<'a> {
    fn ident(&self, i: usize) -> Option<&str> {
        self.toks.get(i).filter(|t| t.kind == Kind::Ident).map(|t| t.text.as_str())
    }
    fn punct(&self, i: usize, c: &str) -> bool {
        self.toks.get(i).is_some_and(|t| t.kind == Kind::Punct && t.text == c)
    }
    /// `.name(` with the dot at `i`.
    fn method_call(&self, i: usize, name: &str) -> bool {
        self.punct(i, ".") && self.ident(i + 1) == Some(name) && self.punct(i + 2, "(")
    }
    /// `.name()` with the dot at `i`.
    fn empty_method_call(&self, i: usize, name: &str) -> bool {
        self.method_call(i, name) && self.punct(i + 3, ")")
    }
    fn path2(&self, i: usize, a: &str, b: &str) -> bool {
        self.ident(i) == Some(a)
            && self.punct(i + 1, ":")
            && self.punct(i + 2, ":")
            && self.ident(i + 3) == Some(b)
    }

    /// Park class at the dot/ident token `i`, if any.
    fn park_kind(&self, i: usize) -> Option<&'static str> {
        if matches!(self.ident(i), Some("yield_op" | "model_blocking" | "yield_tick"))
            && self.punct(i + 1, "(")
        {
            return Some(match self.ident(i) {
                Some("yield_op") => "yield_op",
                Some("model_blocking") => "model_blocking",
                _ => "yield_tick",
            });
        }
        if self.path2(i, "caf_sched", "park") || self.path2(i, "thread", "park") {
            return Some("park");
        }
        if self.path2(i, "caf_sched", "yield_now") {
            return Some("yield_now");
        }
        if self.empty_method_call(i, "recv") {
            return Some("recv");
        }
        if self.method_call(i, "recv_timeout") {
            return Some("recv_timeout");
        }
        if self.method_call(i, "recv_blocking") {
            return Some("recv_blocking");
        }
        if self.method_call(i, "wait") {
            return Some("wait");
        }
        if self.method_call(i, "wait_timeout") {
            return Some("wait_timeout");
        }
        if self.method_call(i, "wait_while") {
            return Some("wait_while");
        }
        if self.empty_method_call(i, "join") {
            return Some("join");
        }
        None
    }

    /// Lock acquisition at the dot token `i` → receiver ident.
    fn lock_recv(&self, i: usize) -> Option<String> {
        let is_lock = self.empty_method_call(i, "lock")
            || self.empty_method_call(i, "read")
            || self.empty_method_call(i, "write");
        if !is_lock {
            return None;
        }
        // Backscan for the receiver: `self.inner.lock()` → `inner`,
        // `q[i].lock()` → `q`, `SHARDS[k].read()` → `SHARDS`.
        let mut j = i;
        loop {
            if j == 0 {
                return Some("<expr>".into());
            }
            j -= 1;
            let t = &self.toks[j];
            if t.kind == Kind::Ident {
                return Some(t.text.clone());
            }
            if t.kind == Kind::Punct && t.text == "]" {
                // Skip the index expression.
                let mut depth = 1u32;
                while depth > 0 && j > 0 {
                    j -= 1;
                    match self.toks[j].text.as_str() {
                        "]" => depth += 1,
                        "[" => depth -= 1,
                        _ => {}
                    }
                }
                continue;
            }
            if t.kind == Kind::Punct && (t.text == ")" || t.text == ".") {
                if t.text == ")" {
                    let mut depth = 1u32;
                    while depth > 0 && j > 0 {
                        j -= 1;
                        match self.toks[j].text.as_str() {
                            ")" => depth += 1,
                            "(" => depth -= 1,
                            _ => {}
                        }
                    }
                }
                continue;
            }
            return Some("<expr>".into());
        }
    }
}

/// Build the wait graph, emit CAFL009 findings into `report`.
pub fn build(ws: &Workspace, graph: &CallGraph, report: &mut Report) -> Graph {
    let mut g = Graph::default();
    let mut node_keys: BTreeSet<String> = BTreeSet::new();
    let mut edge_keys: BTreeSet<(String, String, String, String, u32)> = BTreeSet::new();
    let mut diags: Vec<Diag> = Vec::new();

    // Which call-graph nodes are in waitgraph scope (modeled, not the
    // park implementation, not test code)?
    let scoped: Vec<Option<&str>> = graph
        .nodes
        .iter()
        .map(|n| {
            let fu = &ws.files[n.file];
            if excluded(&fu.rel) || fu.sc.in_test.get(n.body.0).copied().unwrap_or(false) {
                return None;
            }
            modeled(&fu.rel)
        })
        .collect();

    // Direct (own-body, outside nested closures is fine — multiplicity
    // does not matter for set union) lock/park content per node.
    let mut own: Vec<FnSummary> = vec![FnSummary::default(); graph.nodes.len()];
    for (n, node) in graph.nodes.iter().enumerate() {
        let Some(krate) = scoped[n] else { continue };
        let fu = &ws.files[node.file];
        let f = F { toks: &fu.lx.tokens };
        for i in node.body.0 + 1..node.body.1 {
            if fu.sc.fn_of.get(i) != Some(&Some(node.scope_fn)) {
                continue;
            }
            if let Some(kind) = f.park_kind(i) {
                let id = format!("park:{krate}/{kind}");
                own[n].parks.insert(id.clone());
                if node_keys.insert(id.clone()) {
                    g.nodes.push(Node {
                        id,
                        kind: "park".into(),
                        file: fu.rel.clone(),
                        line: fu.lx.tokens[i].line,
                        function: node.name.clone(),
                    });
                }
            }
            if let Some(recv) = f.lock_recv(i) {
                let id = format!("lock:{krate}/{recv}");
                own[n].locks.insert(id.clone());
                if node_keys.insert(id.clone()) {
                    g.nodes.push(Node {
                        id,
                        kind: "lock".into(),
                        file: fu.rel.clone(),
                        line: fu.lx.tokens[i].line,
                        function: node.name.clone(),
                    });
                }
            }
        }
    }

    // Transitive summaries: fixpoint union over the call graph.
    let mut summ = own.clone();
    loop {
        let mut changed = false;
        for n in 0..graph.nodes.len() {
            if scoped[n].is_none() {
                continue;
            }
            let mut acc = summ[n].clone();
            for cs in &graph.calls[n] {
                if scoped[cs.callee].is_none() {
                    continue;
                }
                for p in &summ[cs.callee].parks {
                    acc.parks.insert(p.clone());
                }
                for l in &summ[cs.callee].locks {
                    acc.locks.insert(l.clone());
                }
            }
            if acc != summ[n] {
                summ[n] = acc;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Guard walk per function: CAFL002's tracking, plus lock identity
    // and call-site propagation.
    for (n, node) in graph.nodes.iter().enumerate() {
        let Some(krate) = scoped[n] else { continue };
        let fu = &ws.files[node.file];
        let f = F { toks: &fu.lx.tokens };
        let calls_at: BTreeMap<usize, Vec<usize>> = {
            let mut m: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
            for cs in &graph.calls[n] {
                m.entry(cs.token).or_default().push(cs.callee);
            }
            m
        };
        // (guard name, depth at let, lock node id)
        let mut guards: Vec<(String, u32, String)> = Vec::new();
        let mut i = node.body.0 + 1;
        while i < node.body.1 {
            if fu.sc.fn_of.get(i) != Some(&Some(node.scope_fn)) {
                i += 1;
                continue;
            }
            let depth = fu.sc.depth[i];
            guards.retain(|&(_, d, _)| depth >= d);
            let line = fu.lx.tokens[i].line;

            // `let [mut] name = <expr with .lock()/.read()/.write()>;`
            if f.ident(i) == Some("let") {
                let mut j = i + 1;
                if f.ident(j) == Some("mut") {
                    j += 1;
                }
                if let Some(name) = f.ident(j) {
                    let name = name.to_string();
                    if f.punct(j + 1, "=") {
                        let mut k = j + 2;
                        let mut lock_id: Option<String> = None;
                        while k < node.body.1 && !f.punct(k, ";") {
                            if let Some(recv) = f.lock_recv(k) {
                                lock_id = Some(format!("lock:{krate}/{recv}"));
                            }
                            k += 1;
                        }
                        if let Some(id) = lock_id {
                            guards.push((name, depth, id));
                        }
                        i = k + 1;
                        continue;
                    }
                }
            }
            // Explicit release.
            if f.ident(i) == Some("drop") && f.punct(i + 1, "(") {
                if let Some(name) = f.ident(i + 2) {
                    if f.punct(i + 3, ")") {
                        guards.retain(|(gname, _, _)| gname != name);
                    }
                }
            }

            if !guards.is_empty() {
                // Direct park while holding: CAFL002's domain —
                // recorded as an `intra` edge, not re-flagged here.
                if let Some(kind) = f.park_kind(i) {
                    let to = format!("park:{krate}/{kind}");
                    for (_, _, from) in &guards {
                        push_edge(
                            &mut g,
                            &mut edge_keys,
                            Edge {
                                from: from.clone(),
                                to: to.clone(),
                                scope: "intra".into(),
                                file: fu.rel.clone(),
                                line,
                                function: node.name.clone(),
                                via: kind.into(),
                                status: "ok".into(),
                            },
                        );
                    }
                }
                // Direct nested acquisition: lock→lock order edge.
                if let Some(recv) = f.lock_recv(i) {
                    let to = format!("lock:{krate}/{recv}");
                    for (_, _, from) in &guards {
                        if *from != to {
                            push_edge(
                                &mut g,
                                &mut edge_keys,
                                Edge {
                                    from: from.clone(),
                                    to: to.clone(),
                                    scope: "intra".into(),
                                    file: fu.rel.clone(),
                                    line,
                                    function: node.name.clone(),
                                    via: recv.clone(),
                                    status: "ok".into(),
                                },
                            );
                        }
                    }
                }
                // Call into code that transitively parks or locks.
                if let Some(callees) = calls_at.get(&i) {
                    for &c in callees {
                        if scoped[c].is_none() {
                            continue;
                        }
                        let callee_name = graph.nodes[c].name.clone();
                        for p in summ[c].parks.clone() {
                            let allowed = fu.allow(line, "wait-graph");
                            for (gname, _, from) in guards.clone() {
                                push_edge(
                                    &mut g,
                                    &mut edge_keys,
                                    Edge {
                                        from: from.clone(),
                                        to: p.clone(),
                                        scope: "inter".into(),
                                        file: fu.rel.clone(),
                                        line,
                                        function: node.name.clone(),
                                        via: callee_name.clone(),
                                        status: if allowed { "allowed" } else { "flagged" }.into(),
                                    },
                                );
                                if !allowed {
                                    diags.push(Diag {
                                        code: "CAFL009",
                                        class: "wait-graph",
                                        file: fu.rel.clone(),
                                        line,
                                        msg: format!(
                                            "lock guard `{gname}` ({from}) held across call \
                                             `{callee_name}` which parks at {p} (call-graph \
                                             propagation): drop the guard before the call, or \
                                             mark `// lint:allow(wait-graph)` with justification"
                                        ),
                                    });
                                }
                            }
                        }
                        for l in summ[c].locks.clone() {
                            for (_, _, from) in guards.clone() {
                                if from != l {
                                    push_edge(
                                        &mut g,
                                        &mut edge_keys,
                                        Edge {
                                            from: from.clone(),
                                            to: l.clone(),
                                            scope: "inter".into(),
                                            file: fu.rel.clone(),
                                            line,
                                            function: node.name.clone(),
                                            via: callee_name.clone(),
                                            status: "ok".into(),
                                        },
                                    );
                                }
                            }
                        }
                    }
                }
            }
            i += 1;
        }
    }

    // Lock-order cycles (length ≥ 2): AB/BA inversions are deadlocks
    // under the right schedule regardless of park sites.
    for cyc in lock_cycles(&g) {
        let anchor = g
            .edges
            .iter()
            .filter(|e| e.from == cyc[0] && e.to == cyc[1])
            .min_by_key(|e| (e.file.clone(), e.line))
            .cloned();
        if let Some(e) = anchor {
            let fi = ws.files.iter().position(|fu| fu.rel == e.file);
            let allowed = fi.is_some_and(|fi| ws.files[fi].allow(e.line, "wait-graph"));
            if !allowed {
                diags.push(Diag {
                    code: "CAFL009",
                    class: "wait-graph",
                    file: e.file.clone(),
                    line: e.line,
                    msg: format!(
                        "lock-order cycle {}: acquisition orders invert across functions — \
                         fix the order, or mark `// lint:allow(wait-graph)` with justification",
                        cyc.join(" -> ")
                    ),
                });
            }
        }
    }

    g.nodes.sort();
    g.edges.sort();
    report.diags.append(&mut diags);
    g
}

fn push_edge(g: &mut Graph, keys: &mut BTreeSet<(String, String, String, String, u32)>, e: Edge) {
    if keys.insert((e.from.clone(), e.to.clone(), e.scope.clone(), e.file.clone(), e.line)) {
        g.edges.push(e);
    }
}

/// Simple cycles (length ≥ 2) in the lock→lock order graph, each
/// canonicalized to start at its smallest node and reported once.
fn lock_cycles(g: &Graph) -> Vec<Vec<String>> {
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in &g.edges {
        if e.from.starts_with("lock:") && e.to.starts_with("lock:") && e.from != e.to {
            adj.entry(&e.from).or_default().insert(&e.to);
        }
    }
    let mut found: BTreeSet<Vec<String>> = BTreeSet::new();
    let nodes: Vec<&str> = adj.keys().copied().collect();
    for &start in &nodes {
        // DFS bounded to short cycles (order inversions are almost
        // always 2–3 locks long; bound keeps this linear in practice).
        let mut stack: Vec<(Vec<&str>, &str)> = vec![(vec![start], start)];
        while let Some((path, at)) = stack.pop() {
            if path.len() > 4 {
                continue;
            }
            if let Some(nexts) = adj.get(at) {
                for &nx in nexts {
                    if nx == start && path.len() >= 2 {
                        // Canonical: rotate so the smallest id leads.
                        let min_pos = path
                            .iter()
                            .enumerate()
                            .min_by_key(|(_, s)| **s)
                            .map(|(p, _)| p)
                            .unwrap_or(0);
                        let mut canon: Vec<String> =
                            path[min_pos..].iter().map(|s| s.to_string()).collect();
                        canon.extend(path[..min_pos].iter().map(|s| s.to_string()));
                        found.insert(canon);
                    } else if !path.contains(&nx) {
                        let mut p2 = path.clone();
                        p2.push(nx);
                        stack.push((p2, nx));
                    }
                }
            }
        }
    }
    found.into_iter().collect()
}
