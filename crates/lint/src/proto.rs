//! CAFL008 `sync-protocol`: the static twin of caf-check's epoch
//! checker — an abstract-state walk of the CAF API over every kernel,
//! example, and integration-test body (`crates/hpcc`, `examples/`,
//! `tests/`).
//!
//! The abstraction mirrors what the runtime actually does (verified
//! against `crates/core`): deferred one-sided work — `copy_async_*`,
//! `team_*_async`, `agg_accumulate_*` — makes the image *dirty*; only
//! `cofence`/`cofence_with_event`, `event_notify[_with_flush]` (release
//! barrier through `release_all()`), and `finish`/`finish_fast` closure
//! exit (drain + `release_all()` + Yang termination) make it clean
//! again. Collectives (`barrier`, `sync_all`, reductions) do **not**
//! call `release_all()` and therefore do not clean — exactly the §4.1
//! unflushed-put hazard this pass exists to catch before a schedule
//! runs.
//!
//! Per function we compute a gen/kill effect summary over its CFG —
//! `may_gen`: some path can leave new dirty work at return; `must_kill`:
//! every path releases everything — composed interprocedurally over the
//! call graph to a fixpoint. Closures are handled by multiplicity:
//! `finish`-closures run exactly once (and their exit releases),
//! `ship`-closures run remotely under the paper's finish accounting
//! (drained by the target after execution — but must not contain team
//! collectives, and the `ship` itself must be under a `finish`),
//! let-bound closures apply their summary at each call site, and
//! anonymous closures join as may-execute.
//!
//! Findings (at *root* bodies — functions no in-scope fn calls):
//! - dirty-at-exit on some path (release missing on a branch, a
//!   loop-carried put, an early return);
//! - `event_wait` with no reachable `event_notify` anywhere in the same
//!   program (SPMD notify/wait pairing);
//! - `ship` never under a `finish` block;
//!
//! and, at any function: a team collective inside a `ship`ped closure
//! (shipped functions must not call collectives).
//!
//! **Failure edges** (DESIGN.md §17): a program that reaches any
//! failed-image API — a `_stat` blocking variant, `team_reform`,
//! `fail_image`, `image_status`, `failed_images` — is *fault-aware*: it
//! expects images to die. In such a program every blocking call that
//! has a `_stat` twin but doesn't thread the `Stat` out-param
//! (`barrier`, `sync_all`, `event_wait`, `allreduce`, `finish`,
//! `finish_fast`) is a failure edge: once an image fails it panics
//! instead of reporting, undoing the recovery the rest of the program
//! was written for. Each such site is flagged at fault-aware roots.
//! Programs that never touch the fault API are exempt — plain blocking
//! calls are the correct idiom on a failure-free team.
//!
//! Escape hatch: `// lint:allow(sync-protocol)` (or the code-spelled
//! `// lint:allow(CAFL008)`) on the flagged line or the line above.

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::CallGraph;
use crate::cfg::{self, Cfg};
use crate::lexer::Kind;
use crate::{Diag, Report, Workspace};

/// Ops that defer completion to the next release point.
const DIRTY_OPS: &[&str] = &[
    "copy_async_put",
    "copy_async_get",
    "copy_async_between",
    "team_broadcast_async",
    "team_allgather_async",
    "team_reduce_async",
    "team_alltoall_async",
    "agg_accumulate_xor",
    "agg_accumulate_add",
];

/// Ops that release *all* outstanding deferred work (route through
/// `release_all()` in `crates/core`).
const RELEASE_OPS: &[&str] =
    &["cofence", "cofence_with_event", "event_notify", "event_notify_with_flush"];

const NOTIFY_OPS: &[&str] = &["event_notify", "event_notify_with_flush"];
const WAIT_OP: &str = "event_wait";

/// Team collectives (do NOT release deferred work; forbidden inside
/// shipped closures).
const COLLECTIVE_OPS: &[&str] = &[
    "barrier",
    "sync_all",
    "sync_images",
    "broadcast",
    "reduce",
    "allreduce",
    "allgather",
    "allgatherv",
    "alltoall",
    "co_sum",
    "co_max",
    "co_min",
    "co_broadcast",
    "team_split",
    "coarray_alloc",
    "coarray_free",
    "event_alloc",
];

/// Other API idents that mark a body as CAF code (for root selection).
const API_MARKERS: &[&str] = &["finish", "finish_fast", "ship", "event_wait", "event_trywait"];

/// Failed-image API (DESIGN.md §17): reaching any of these marks the
/// whole program as fault-aware.
const FAULT_API_OPS: &[&str] = &[
    "barrier_stat",
    "sync_all_stat",
    "allreduce_stat",
    "event_wait_stat",
    "finish_stat",
    "team_reform",
    "fail_image",
    "image_status",
    "failed_images",
];

/// Blocking calls with a `_stat` twin. In a fault-aware program each of
/// these is a failure edge — it panics on a failed image instead of
/// reporting. (`finish`/`finish_fast` are handled in their own branch;
/// they are failure edges too.)
const BLIND_BLOCKING_OPS: &[&str] = &["barrier", "sync_all", "event_wait", "allreduce"];

fn in_scope(rel: &str) -> bool {
    rel.starts_with("crates/hpcc/") || rel.starts_with("examples/") || rel.starts_with("tests/")
}

/// Gen/kill effect of running a region: `may_gen` — some path leaves
/// new unreleased work; `must_kill` — every path ends with a full
/// release after the last deferred op.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Effect {
    may_gen: bool,
    must_kill: bool,
}

/// Interprocedural summary of one function (or closure body).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct Summary {
    eff: Effect,
    /// Representative site of dirty work that may go unreleased.
    gen_site: Option<(usize, u32)>,
    uses_api: bool,
    wait_site: Option<(usize, u32)>,
    has_notify: bool,
    has_collective: bool,
    /// `ship` at finish-depth 0 in this body (caller may satisfy it).
    bare_ship: Option<(usize, u32)>,
    /// Reaches failed-image API (`_stat` variants, `team_reform`, ...).
    uses_fault_api: bool,
    /// Blocking calls with a `_stat` twin that don't thread `Stat` —
    /// failure edges if the program turns out to be fault-aware.
    blind_sites: BTreeSet<(usize, u32)>,
}

/// Per-path dataflow state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct S {
    gen: bool,
    kill: bool,
    site: Option<(usize, u32)>,
}

impl S {
    fn entry() -> S {
        S { gen: false, kill: false, site: None }
    }

    fn join(a: S, b: S) -> S {
        S {
            gen: a.gen || b.gen,
            kill: a.kill && b.kill,
            site: a.site.or(b.site),
        }
    }

    fn apply(&mut self, e: &Summary) {
        if e.eff.must_kill {
            self.kill = true;
            self.gen = false;
            self.site = None;
        }
        if e.eff.may_gen {
            self.gen = true;
            if self.site.is_none() {
                self.site = e.gen_site;
            }
        }
    }
}

struct Pass<'a> {
    ws: &'a Workspace,
    graph: &'a CallGraph,
    summaries: Vec<Summary>,
    /// In-scope (hpcc/examples/tests, non-test-cfg) call-graph nodes.
    scoped: Vec<bool>,
    /// Emit findings (final reporting round only).
    emit: bool,
    dedup: BTreeSet<(usize, u32, &'static str)>,
    findings: Vec<Diag>,
}

/// Run CAFL008 over the workspace.
pub fn sync_protocol_pass(ws: &Workspace, graph: &CallGraph, report: &mut Report) {
    let scoped: Vec<bool> = graph
        .nodes
        .iter()
        .map(|n| {
            let fu = &ws.files[n.file];
            in_scope(&fu.rel) && !fu.sc.in_test.get(n.body.0).copied().unwrap_or(false)
        })
        .collect();
    let mut pass = Pass {
        ws,
        graph,
        summaries: vec![Summary::default(); graph.nodes.len()],
        scoped,
        emit: false,
        dedup: BTreeSet::new(),
        findings: Vec::new(),
    };
    // Fixpoint over fn summaries (monotone in may_gen/flags; bounded).
    for _ in 0..12 {
        let mut changed = false;
        for n in 0..pass.graph.nodes.len() {
            if !pass.scoped[n] {
                continue;
            }
            let s = pass.summarize_fn(n);
            if s != pass.summaries[n] {
                pass.summaries[n] = s;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    // Reporting round: collective-in-ship fires anywhere; the protocol
    // obligations fire at roots (fns no in-scope fn calls into).
    pass.emit = true;
    let mut called: BTreeSet<usize> = BTreeSet::new();
    for n in 0..pass.graph.nodes.len() {
        if !pass.scoped[n] {
            continue;
        }
        for cs in &pass.graph.calls[n] {
            called.insert(cs.callee);
        }
    }
    for n in 0..pass.graph.nodes.len() {
        if !pass.scoped[n] {
            continue;
        }
        let s = pass.summarize_fn(n);
        if called.contains(&n) {
            continue;
        }
        let root = pass.graph.nodes[n].name.clone();
        if s.eff.may_gen {
            if let Some((fi, line)) = s.gen_site {
                pass.finding(
                    fi,
                    line,
                    "dirty-exit",
                    format!(
                        "deferred one-sided work issued here may never be released on some \
                         path through `{root}` (add cofence/event_notify, or end the program \
                         inside finish)"
                    ),
                );
            }
        }
        if let Some((fi, line)) = s.wait_site {
            if !s.has_notify {
                pass.finding(
                    fi,
                    line,
                    "wait-no-notify",
                    format!(
                        "event_wait reachable from `{root}` pairs with no event_notify \
                         anywhere in the same program (SPMD notify/wait pairing)"
                    ),
                );
            }
        }
        if let Some((fi, line)) = s.bare_ship {
            pass.finding(
                fi,
                line,
                "ship-no-finish",
                format!(
                    "ship() reachable from `{root}` without an enclosing finish block: \
                     its completion is never awaited (Yang termination accounting)"
                ),
            );
        }
        if s.uses_fault_api {
            for (fi, line) in s.blind_sites.clone() {
                pass.finding(
                    fi,
                    line,
                    "failure-blind",
                    format!(
                        "blocking call without a Stat out-param in the fault-aware \
                         program rooted at `{root}`: once an image fails this panics \
                         instead of reporting (use the _stat twin, or \
                         lint:allow(CAFL008) if the call provably runs on a \
                         failure-free team)"
                    ),
                );
            }
        }
    }
    report.diags.append(&mut pass.findings);
}

impl<'a> Pass<'a> {
    fn finding(&mut self, file_idx: usize, line: u32, kind: &'static str, msg: String) {
        if !self.emit || !self.dedup.insert((file_idx, line, kind)) {
            return;
        }
        let fu = &self.ws.files[file_idx];
        // Both spellings work: the class name and the diagnostic code
        // (the ISSUE-facing form for failure edges).
        if fu.allow(line, "sync-protocol") || fu.allow(line, "CAFL008") {
            return;
        }
        self.findings.push(Diag {
            code: "CAFL008",
            class: "sync-protocol",
            file: fu.rel.clone(),
            line,
            msg,
        });
    }

    fn summarize_fn(&mut self, n: usize) -> Summary {
        let (bs, be) = self.graph.nodes[n].body;
        self.summarize_range(n, bs + 1, be, 0, 0)
    }

    /// Summarize a token range as a CFG dataflow; `fdepth` is the
    /// current finish-closure nesting, `cdepth` bounds closure
    /// recursion.
    fn summarize_range(
        &mut self,
        node: usize,
        start: usize,
        end: usize,
        fdepth: u32,
        cdepth: u32,
    ) -> Summary {
        let file_idx = self.graph.nodes[node].file;
        let toks = &self.ws.files[file_idx].lx.tokens;
        if cdepth > 16 || start >= end {
            return Summary::default();
        }
        let g = cfg::build_range(toks, start, end);

        // Let-bound closure environment, in definition order.
        let mut env: BTreeMap<String, Summary> = BTreeMap::new();
        for ci in 0..g.closures.len() {
            if let Some(name) = g.closures[ci].name.clone() {
                let (cs, ce) = g.closures[ci].body;
                let s = self.summarize_range(node, cs, ce, fdepth, cdepth + 1);
                env.insert(name, s);
            }
        }

        let mut out = Summary::default();
        let nb = g.blocks.len();
        let mut inp: Vec<Option<S>> = vec![None; nb];
        inp[0] = Some(S::entry());
        let mut work = vec![0usize];
        let mut used_closures: BTreeSet<usize> = BTreeSet::new();
        while let Some(b) = work.pop() {
            let Some(s_in) = inp[b] else { continue };
            let s_out = self.transfer(node, &g, b, s_in, fdepth, cdepth, &env, &mut out, &mut used_closures);
            for &succ in &g.blocks[b].succs {
                let joined = match inp[succ] {
                    None => s_out,
                    Some(prev) => S::join(prev, s_out),
                };
                if inp[succ] != Some(joined) {
                    inp[succ] = Some(joined);
                    work.push(succ);
                }
            }
        }
        let exit = inp[g.exit].unwrap_or(S::entry());
        out.eff = Effect { may_gen: exit.gen, must_kill: exit.kill };
        out.gen_site = exit.site;
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn transfer(
        &mut self,
        node: usize,
        g: &Cfg,
        b: usize,
        mut s: S,
        fdepth: u32,
        cdepth: u32,
        env: &BTreeMap<String, Summary>,
        out: &mut Summary,
        used_closures: &mut BTreeSet<usize>,
    ) -> S {
        let file_idx = self.graph.nodes[node].file;

        // Merge token positions and closure literals into one ordered
        // event stream.
        enum Ev {
            Tok(usize),
            Clo(usize),
        }
        let mut evs: Vec<(usize, Ev)> = Vec::new();
        for &(rs, re) in &g.blocks[b].ranges {
            for i in rs..re {
                evs.push((i, Ev::Tok(i)));
            }
        }
        for (ci, c) in g.closures.iter().enumerate() {
            if c.block == b {
                evs.push((c.token, Ev::Clo(ci)));
            }
        }
        evs.sort_by_key(|&(p, _)| p);

        for (_, ev) in evs {
            match ev {
                Ev::Tok(i) => {
                    let toks = &self.ws.files[file_idx].lx.tokens;
                    let is_dot = toks[i].kind == Kind::Punct && toks[i].text == ".";
                    let name_at = |k: usize| {
                        toks.get(k).filter(|t| t.kind == Kind::Ident).map(|t| t.text.clone())
                    };
                    let open_after =
                        |k: usize| toks.get(k).is_some_and(|t| t.kind == Kind::Punct && t.text == "(");
                    if is_dot {
                        let Some(nm) = name_at(i + 1) else { continue };
                        if !open_after(i + 2) {
                            continue;
                        }
                        let line = toks[i + 1].line;
                        let nm = nm.as_str();
                        if DIRTY_OPS.contains(&nm) {
                            out.uses_api = true;
                            s.gen = true;
                            if s.site.is_none() {
                                s.site = Some((file_idx, line));
                            }
                        } else if RELEASE_OPS.contains(&nm) {
                            out.uses_api = true;
                            s.gen = false;
                            s.kill = true;
                            s.site = None;
                            if NOTIFY_OPS.contains(&nm) {
                                out.has_notify = true;
                            }
                        } else if nm == WAIT_OP {
                            out.uses_api = true;
                            if out.wait_site.is_none() {
                                out.wait_site = Some((file_idx, line));
                            }
                            out.blind_sites.insert((file_idx, line));
                        } else if COLLECTIVE_OPS.contains(&nm) {
                            out.uses_api = true;
                            out.has_collective = true;
                            if BLIND_BLOCKING_OPS.contains(&nm) {
                                out.blind_sites.insert((file_idx, line));
                            }
                        } else if nm == "finish" || nm == "finish_fast" || nm == "finish_stat" {
                            out.uses_api = true;
                            if nm == "finish_stat" {
                                out.uses_fault_api = true;
                            } else {
                                out.blind_sites.insert((file_idx, line));
                            }
                            // Run the finish closure exactly once; its
                            // exit releases everything (drain + Yang
                            // termination + release_all). finish_stat's
                            // failure path *discards* the counters — the
                            // deferred work is dropped, not deferred
                            // further, so it releases for this
                            // abstraction too (DESIGN.md §17).
                            if let Some(ci) = self.closure_after(
                                g,
                                i,
                                &["finish", "finish_fast", "finish_stat"],
                                used_closures,
                            ) {
                                let (cs, ce) = g.closures[ci].body;
                                let inner = self.summarize_range(node, cs, ce, fdepth + 1, cdepth + 1);
                                merge_flags(out, &inner);
                            }
                            s.gen = false;
                            s.kill = true;
                            s.site = None;
                        } else if FAULT_API_OPS.contains(&nm) {
                            out.uses_api = true;
                            out.uses_fault_api = true;
                            // The stat collectives are still collectives
                            // for the ship rule (remote execution
                            // context deadlocks either way).
                            if matches!(nm, "barrier_stat" | "sync_all_stat" | "allreduce_stat") {
                                out.has_collective = true;
                            }
                        } else if nm == "ship" {
                            out.uses_api = true;
                            let line = toks[i + 1].line;
                            if let Some(ci) = self.closure_after(g, i, &["ship"], used_closures) {
                                let (cs, ce) = g.closures[ci].body;
                                // The shipped body runs remotely under
                                // the target's finish accounting: its
                                // dirty work is drained after execution,
                                // but collectives inside it deadlock.
                                let inner = self.summarize_range(node, cs, ce, fdepth, cdepth + 1);
                                if inner.has_collective {
                                    self.finding(
                                        file_idx,
                                        line,
                                        "collective-in-ship",
                                        "team collective inside a ship()ped closure: shipped \
                                         functions must not call collectives (remote execution \
                                         context)"
                                            .to_string(),
                                    );
                                }
                                out.wait_site = out.wait_site.or(inner.wait_site);
                                out.has_notify |= inner.has_notify;
                            }
                            if fdepth == 0 && out.bare_ship.is_none() {
                                out.bare_ship = Some((file_idx, line));
                            }
                        } else if API_MARKERS.contains(&nm) {
                            out.uses_api = true;
                        } else {
                            // Resolved method call into scoped code.
                            self.apply_call(node, i + 1, fdepth, &mut s, out);
                        }
                    } else if toks[i].kind == Kind::Ident && open_after(i + 1) {
                        let skip = i > 0
                            && ((toks[i - 1].kind == Kind::Punct && toks[i - 1].text == ".")
                                || (toks[i - 1].kind == Kind::Ident && toks[i - 1].text == "fn"));
                        if skip {
                            continue;
                        }
                        if let Some(cs) = env.get(toks[i].text.as_str()) {
                            // Let-bound closure call: apply its summary.
                            let cs = cs.clone();
                            s.apply(&cs);
                            merge_flags(out, &cs);
                            if fdepth == 0 {
                                out.bare_ship = out.bare_ship.or(cs.bare_ship);
                            }
                        } else {
                            self.apply_call(node, i, fdepth, &mut s, out);
                        }
                    }
                }
                Ev::Clo(ci) => {
                    let c = &g.closures[ci];
                    if c.name.is_some()
                        || used_closures.contains(&ci)
                        || matches!(
                            c.arg_of.as_deref(),
                            Some("finish" | "finish_fast" | "finish_stat" | "ship")
                        )
                    {
                        continue;
                    }
                    // Anonymous closure: may execute, any number of
                    // times — join its generated work, never its kills.
                    let (cs, ce) = c.body;
                    let inner = self.summarize_range(node, cs, ce, fdepth, cdepth + 1);
                    if inner.eff.may_gen {
                        s.gen = true;
                        if s.site.is_none() {
                            s.site = inner.gen_site;
                        }
                    }
                    merge_flags(out, &inner);
                    if fdepth == 0 {
                        out.bare_ship = out.bare_ship.or(inner.bare_ship);
                    }
                }
            }
        }
        s
    }

    /// The first unconsumed closure after token `i` that is an argument
    /// of one of `callees`.
    fn closure_after(
        &self,
        g: &Cfg,
        i: usize,
        callees: &[&str],
        used: &mut BTreeSet<usize>,
    ) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (ci, c) in g.closures.iter().enumerate() {
            if c.token > i
                && !used.contains(&ci)
                && c.arg_of.as_deref().is_some_and(|a| callees.contains(&a))
                && best.is_none_or(|b| c.token < g.closures[b].token)
            {
                best = Some(ci);
            }
        }
        if let Some(ci) = best {
            used.insert(ci);
        }
        best
    }

    /// Apply the summaries of the call-graph-resolved callees at the
    /// name token `tok` (worst-case join over candidates).
    fn apply_call(&mut self, node: usize, tok: usize, fdepth: u32, s: &mut S, out: &mut Summary) {
        let mut cands: Vec<usize> = self.graph.calls[node]
            .iter()
            .filter(|cs| cs.token == tok && self.scoped[cs.callee])
            .map(|cs| cs.callee)
            .collect();
        cands.dedup();
        if cands.is_empty() {
            return;
        }
        let mut joined = self.summaries[cands[0]].clone();
        for &c in &cands[1..] {
            let sc = &self.summaries[c];
            joined.eff.may_gen |= sc.eff.may_gen;
            joined.eff.must_kill &= sc.eff.must_kill;
            joined.gen_site = joined.gen_site.or(sc.gen_site);
            joined.uses_api |= sc.uses_api;
            joined.wait_site = joined.wait_site.or(sc.wait_site);
            joined.has_notify |= sc.has_notify;
            joined.has_collective |= sc.has_collective;
            joined.bare_ship = joined.bare_ship.or(sc.bare_ship);
            joined.uses_fault_api |= sc.uses_fault_api;
            joined.blind_sites.extend(sc.blind_sites.iter().copied());
        }
        s.apply(&joined);
        merge_flags(out, &joined);
        if fdepth == 0 {
            out.bare_ship = out.bare_ship.or(joined.bare_ship);
        }
    }
}

fn merge_flags(out: &mut Summary, inner: &Summary) {
    out.uses_api |= inner.uses_api;
    out.wait_site = out.wait_site.or(inner.wait_site);
    out.has_notify |= inner.has_notify;
    out.has_collective |= inner.has_collective;
    out.uses_fault_api |= inner.uses_fault_api;
    out.blind_sites.extend(inner.blind_sites.iter().copied());
}
