//! Intra-procedural control-flow graphs over the lexed token stream.
//!
//! `build()` turns one fn body (the token range between its braces) into
//! basic blocks of token ranges with successor edges: `if`/`else if`
//! chains, `match` arms, `loop`/`while`/`for` back edges, early exits
//! (`return`, `?`, `break`, `continue`). Closures are *not* inlined into
//! the enclosing flow — a closure may run zero or many times — they are
//! extracted as [`ClosureRef`] nested bodies for the client to analyze
//! with whatever multiplicity its semantics dictate (the sync-protocol
//! pass runs `finish`-closures exactly once, joins other closures as
//! may-execute, and resolves let-bound closures at their call sites).
//!
//! Known imprecision, all conservative for the may-analyses built on
//! top: labeled `break`/`continue` target the innermost loop, and a `?`
//! in a branch condition does not fork an exit edge.

use crate::lexer::{Kind, Token};

/// One basic block: token index ranges (half-open, source order) plus
/// successor block indices.
#[derive(Debug, Default)]
pub struct Block {
    pub ranges: Vec<(usize, usize)>,
    pub succs: Vec<usize>,
}

/// A closure literal extracted from the flow.
#[derive(Debug)]
pub struct ClosureRef {
    /// Binding name when the closure is `let name = |..| ..` — callable
    /// by `name(..)` later in the same fn.
    pub name: Option<String>,
    /// Half-open token range of the closure body (inside its braces for
    /// block bodies, the expression tokens otherwise).
    pub body: (usize, usize),
    /// Callee of the innermost open call at the closure site
    /// (`img.finish(team, |img| ..)` → `Some("finish")`).
    pub arg_of: Option<String>,
    /// Block in which the closure literal appears.
    pub block: usize,
    /// Token index of the closure start (`move` or the first `|`).
    pub token: usize,
}

/// The graph. Block 0 is the entry; `exit` is a token-free sink every
/// normal or early return reaches.
#[derive(Debug)]
pub struct Cfg {
    pub blocks: Vec<Block>,
    pub exit: usize,
    pub closures: Vec<ClosureRef>,
}

/// Build the CFG of the body whose braces are at token indices
/// `body_open`/`body_close` (as recorded by `scope::FnInfo`).
pub fn build(toks: &[Token], body_open: usize, body_close: usize) -> Cfg {
    build_range(toks, body_open + 1, body_close)
}

/// Build a CFG over an arbitrary half-open token range (closure bodies,
/// expression-bodied arms).
pub fn build_range(toks: &[Token], start: usize, end: usize) -> Cfg {
    let mut b = Builder {
        toks,
        blocks: vec![Block::default(), Block::default()],
        exit: 1,
        closures: Vec::new(),
        loops: Vec::new(),
        lo: start.saturating_sub(1),
    };
    let last = b.walk(start, end.min(toks.len()), 0);
    b.edge(last, 1);
    Cfg { blocks: b.blocks, exit: 1, closures: b.closures }
}

struct Builder<'a> {
    toks: &'a [Token],
    blocks: Vec<Block>,
    exit: usize,
    closures: Vec<ClosureRef>,
    /// (continue target, break target) per open loop.
    loops: Vec<(usize, usize)>,
    /// Lower bound for backscans (the body's opening brace).
    lo: usize,
}

impl<'a> Builder<'a> {
    fn ident(&self, i: usize) -> Option<&str> {
        self.toks.get(i).filter(|t| t.kind == Kind::Ident).map(|t| t.text.as_str())
    }

    fn punct(&self, i: usize, c: &str) -> bool {
        self.toks.get(i).is_some_and(|t| t.kind == Kind::Punct && t.text == c)
    }

    fn new_block(&mut self) -> usize {
        self.blocks.push(Block::default());
        self.blocks.len() - 1
    }

    fn edge(&mut self, a: usize, b: usize) {
        if !self.blocks[a].succs.contains(&b) {
            self.blocks[a].succs.push(b);
        }
    }

    fn emit(&mut self, blk: usize, i: usize) {
        let r = &mut self.blocks[blk].ranges;
        if let Some(last) = r.last_mut() {
            if last.1 == i {
                last.1 = i + 1;
                return;
            }
        }
        r.push((i, i + 1));
    }

    /// Index of the `}` matching the `{` at `open` (token-count match —
    /// strings/comments are already out of the stream).
    fn match_brace(&self, open: usize) -> usize {
        let mut d = 0i32;
        for j in open..self.toks.len() {
            if self.toks[j].kind == Kind::Punct {
                match self.toks[j].text.as_str() {
                    "{" => d += 1,
                    "}" => {
                        d -= 1;
                        if d == 0 {
                            return j;
                        }
                    }
                    _ => {}
                }
            }
        }
        self.toks.len().saturating_sub(1)
    }

    /// Is the `|` at `i` a closure opener rather than a binary or?
    fn is_closure_start(&self, i: usize) -> bool {
        if !self.punct(i, "|") {
            return false;
        }
        if i == 0 {
            return true;
        }
        let p = &self.toks[i - 1];
        match p.kind {
            Kind::Punct => matches!(p.text.as_str(), "=" | "(" | "," | "{" | ";" | ">" | "&"),
            Kind::Ident => matches!(p.text.as_str(), "move" | "return" | "else" | "in"),
            _ => false,
        }
    }

    /// Record a closure starting at `i` (`move` or `|`); skips its body
    /// without emitting and returns the index just past it.
    fn record_closure(&mut self, i: usize, end: usize, cur: usize) -> usize {
        let tok0 = i;
        let mut j = i;
        if self.ident(j) == Some("move") {
            j += 1;
        }
        // Parameter list: `||` or `|..|`.
        if self.punct(j, "|") && self.punct(j + 1, "|") {
            j += 2;
        } else {
            j += 1;
            let (mut pd, mut bd) = (0i32, 0i32);
            while j < end && !(self.punct(j, "|") && pd == 0 && bd == 0) {
                match self.toks[j].text.as_str() {
                    "(" => pd += 1,
                    ")" => pd -= 1,
                    "[" => bd += 1,
                    "]" => bd -= 1,
                    _ => {}
                }
                j += 1;
            }
            j += 1;
        }
        // Optional `-> T` return type before a block body.
        if self.punct(j, "-") && self.punct(j + 1, ">") {
            while j < end && !self.punct(j, "{") {
                j += 1;
            }
        }
        let (bs, be, next) = if self.punct(j, "{") {
            let c = self.match_brace(j);
            (j + 1, c, c + 1)
        } else {
            // Expression body: up to a top-level `,` `)` `;` `}`.
            let s = j;
            let (mut pd, mut bd, mut brd) = (0i32, 0i32, 0i32);
            while j < end {
                let t = self.toks[j].text.as_str();
                if self.toks[j].kind == Kind::Punct {
                    match t {
                        "(" => pd += 1,
                        "[" => bd += 1,
                        "{" => brd += 1,
                        ")" if pd == 0 => break,
                        "]" if bd == 0 => break,
                        "}" if brd == 0 => break,
                        ")" => pd -= 1,
                        "]" => bd -= 1,
                        "}" => brd -= 1,
                        "," | ";" if pd == 0 && bd == 0 && brd == 0 => break,
                        _ => {}
                    }
                }
                j += 1;
            }
            (s, j, j)
        };
        // `let [mut] NAME = [move] |..|` — a nameable closure.
        let mut k = tok0;
        let name = (|| {
            if k > self.lo && self.ident(k.wrapping_sub(1)) == Some("move") {
                k -= 1;
            }
            if k > self.lo + 1 && self.punct(k - 1, "=") {
                let cand = k - 2;
                let nm = self.ident(cand)?;
                let before = cand.checked_sub(1)?;
                let is_let = self.ident(before) == Some("let")
                    || (self.ident(before) == Some("mut")
                        && before > self.lo
                        && self.ident(before - 1) == Some("let"));
                if is_let {
                    return Some(nm.to_string());
                }
            }
            None
        })();
        // Innermost unclosed call at the closure site.
        let arg_of = {
            let mut depth = 0i32;
            let mut found = None;
            let mut j2 = tok0;
            let floor = tok0.saturating_sub(300).max(self.lo);
            while j2 > floor {
                j2 -= 1;
                if self.toks[j2].kind != Kind::Punct {
                    continue;
                }
                match self.toks[j2].text.as_str() {
                    ")" => depth += 1,
                    "(" => {
                        if depth == 0 {
                            found = j2.checked_sub(1).and_then(|p| self.ident(p)).map(String::from);
                            break;
                        }
                        depth -= 1;
                    }
                    ";" if depth == 0 => break,
                    _ => {}
                }
            }
            found
        };
        self.closures.push(ClosureRef { name, body: (bs, be), arg_of, block: cur, token: tok0 });
        next
    }

    /// Scan from `j` to the first `{` at paren/bracket depth 0, emitting
    /// condition tokens into `blk` and extracting closures on the way.
    fn scan_to_brace(&mut self, mut j: usize, end: usize, blk: usize) -> usize {
        let (mut pd, mut bd) = (0i32, 0i32);
        while j < end {
            if self.is_closure_start(j)
                || (self.ident(j) == Some("move") && self.punct(j + 1, "|"))
            {
                j = self.record_closure(j, end, blk);
                continue;
            }
            if self.toks[j].kind == Kind::Punct {
                match self.toks[j].text.as_str() {
                    "(" => pd += 1,
                    ")" => pd -= 1,
                    "[" => bd += 1,
                    "]" => bd -= 1,
                    "{" if pd == 0 && bd == 0 => return j,
                    _ => {}
                }
            }
            self.emit(blk, j);
            j += 1;
        }
        j
    }

    /// Walk `[i, end)` appending to `cur`; returns the block live at
    /// `end`.
    fn walk(&mut self, mut i: usize, end: usize, mut cur: usize) -> usize {
        while i < end {
            // Attributes `#[..]` / `#![..]`: consume wholesale.
            if self.punct(i, "#") {
                let mut j = i + 1;
                if self.punct(j, "!") {
                    j += 1;
                }
                if self.punct(j, "[") {
                    let mut d = 0i32;
                    while j < end {
                        match self.toks[j].text.as_str() {
                            "[" => d += 1,
                            "]" => {
                                d -= 1;
                                if d == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                    i = j + 1;
                    continue;
                }
            }
            if self.is_closure_start(i)
                || (self.ident(i) == Some("move") && self.punct(i + 1, "|"))
            {
                i = self.record_closure(i, end, cur);
                continue;
            }
            match self.ident(i) {
                Some("if") => {
                    let (ni, join) = self.parse_if(i, end, cur);
                    i = ni;
                    cur = join;
                    continue;
                }
                Some("match") => {
                    let (ni, join) = self.parse_match(i, end, cur);
                    i = ni;
                    cur = join;
                    continue;
                }
                Some("loop") if self.punct(i + 1, "{") => {
                    self.emit(cur, i);
                    let head = self.new_block();
                    self.edge(cur, head);
                    let join = self.new_block();
                    let close = self.match_brace(i + 1);
                    self.loops.push((head, join));
                    let out = self.walk(i + 2, close, head);
                    self.edge(out, head);
                    self.loops.pop();
                    i = close + 1;
                    cur = join;
                    continue;
                }
                Some("while") | Some("for") => {
                    self.emit(cur, i);
                    let head = self.new_block();
                    self.edge(cur, head);
                    let open = self.scan_to_brace(i + 1, end, head);
                    let close = self.match_brace(open);
                    let join = self.new_block();
                    self.edge(head, join);
                    let body = self.new_block();
                    self.edge(head, body);
                    self.loops.push((head, join));
                    let out = self.walk(open + 1, close, body);
                    self.edge(out, head);
                    self.loops.pop();
                    i = close + 1;
                    cur = join;
                    continue;
                }
                Some("return") => {
                    // Emit the returned expression into `cur`, then exit.
                    self.emit(cur, i);
                    let mut j = i + 1;
                    let (mut pd, mut bd, mut brd) = (0i32, 0i32, 0i32);
                    while j < end {
                        let t = &self.toks[j];
                        if t.kind == Kind::Punct {
                            match t.text.as_str() {
                                "(" => pd += 1,
                                ")" => pd -= 1,
                                "[" => bd += 1,
                                "]" => bd -= 1,
                                "{" => brd += 1,
                                "}" if brd == 0 => break,
                                "}" => brd -= 1,
                                ";" if pd == 0 && bd == 0 && brd == 0 => break,
                                _ => {}
                            }
                        }
                        self.emit(cur, j);
                        j += 1;
                    }
                    self.edge(cur, self.exit);
                    cur = self.new_block();
                    i = j + 1;
                    continue;
                }
                Some("break") => {
                    self.emit(cur, i);
                    if let Some(&(_, br)) = self.loops.last() {
                        self.edge(cur, br);
                    }
                    cur = self.new_block();
                    i += 1;
                    continue;
                }
                Some("continue") => {
                    self.emit(cur, i);
                    if let Some(&(head, _)) = self.loops.last() {
                        self.edge(cur, head);
                    }
                    cur = self.new_block();
                    i += 1;
                    continue;
                }
                Some("fn") => {
                    // Nested fn item: its body is a separate scope fn —
                    // skip it entirely.
                    let mut j = i + 1;
                    let (mut pd, mut bd) = (0i32, 0i32);
                    while j < end {
                        if self.toks[j].kind == Kind::Punct {
                            match self.toks[j].text.as_str() {
                                "(" => pd += 1,
                                ")" => pd -= 1,
                                "[" => bd += 1,
                                "]" => bd -= 1,
                                "{" if pd == 0 && bd == 0 => break,
                                ";" if pd == 0 && bd == 0 => break,
                                _ => {}
                            }
                        }
                        j += 1;
                    }
                    i = if self.punct(j, "{") { self.match_brace(j) + 1 } else { j + 1 };
                    continue;
                }
                _ => {}
            }
            if self.punct(i, "?") {
                self.emit(cur, i);
                self.edge(cur, self.exit);
                let nb = self.new_block();
                self.edge(cur, nb);
                cur = nb;
                i += 1;
                continue;
            }
            self.emit(cur, i);
            i += 1;
        }
        cur
    }

    /// `if .. { } [else if .. { }]* [else { }]`; returns (next index,
    /// join block).
    fn parse_if(&mut self, i: usize, end: usize, cur: usize) -> (usize, usize) {
        self.emit(cur, i);
        let open = self.scan_to_brace(i + 1, end, cur);
        let close = self.match_brace(open);
        let then_b = self.new_block();
        self.edge(cur, then_b);
        let then_out = self.walk(open + 1, close, then_b);
        if self.ident(close + 1) == Some("else") {
            if self.ident(close + 2) == Some("if") {
                let else_b = self.new_block();
                self.edge(cur, else_b);
                let (ni, else_join) = self.parse_if(close + 2, end, else_b);
                let join = self.new_block();
                self.edge(then_out, join);
                self.edge(else_join, join);
                (ni, join)
            } else {
                let eopen = close + 2;
                let eclose = self.match_brace(eopen);
                let else_b = self.new_block();
                self.edge(cur, else_b);
                let else_out = self.walk(eopen + 1, eclose, else_b);
                let join = self.new_block();
                self.edge(then_out, join);
                self.edge(else_out, join);
                (eclose + 1, join)
            }
        } else {
            let join = self.new_block();
            self.edge(then_out, join);
            self.edge(cur, join);
            (close + 1, join)
        }
    }

    /// `match expr { pat => arm, .. }`; every arm joins.
    fn parse_match(&mut self, i: usize, end: usize, cur: usize) -> (usize, usize) {
        self.emit(cur, i);
        let open = self.scan_to_brace(i + 1, end, cur);
        let close = self.match_brace(open);
        let join = self.new_block();
        let mut j = open + 1;
        let mut any_arm = false;
        while j < close {
            // Pattern (and guard) up to `=>` at relative depth 0.
            let (mut pd, mut bd, mut brd) = (0i32, 0i32, 0i32);
            while j < close {
                if self.toks[j].kind == Kind::Punct {
                    match self.toks[j].text.as_str() {
                        "(" => pd += 1,
                        ")" => pd -= 1,
                        "[" => bd += 1,
                        "]" => bd -= 1,
                        "{" => brd += 1,
                        "}" => brd -= 1,
                        "=" if pd == 0 && bd == 0 && brd == 0 && self.punct(j + 1, ">") => break,
                        _ => {}
                    }
                }
                self.emit(cur, j);
                j += 1;
            }
            if j >= close {
                break;
            }
            j += 2; // past `=>`
            let arm_b = self.new_block();
            self.edge(cur, arm_b);
            any_arm = true;
            if self.punct(j, "{") {
                let c = self.match_brace(j);
                let out = self.walk(j + 1, c, arm_b);
                self.edge(out, join);
                j = c + 1;
                if self.punct(j, ",") {
                    j += 1;
                }
            } else {
                // Expression arm up to a top-level `,` (or the match `}`).
                let s = j;
                let (mut pd, mut bd, mut brd) = (0i32, 0i32, 0i32);
                while j < close {
                    if self.toks[j].kind == Kind::Punct {
                        match self.toks[j].text.as_str() {
                            "(" => pd += 1,
                            ")" => pd -= 1,
                            "[" => bd += 1,
                            "]" => bd -= 1,
                            "{" => brd += 1,
                            "}" => brd -= 1,
                            "," if pd == 0 && bd == 0 && brd == 0 => break,
                            _ => {}
                        }
                    }
                    j += 1;
                }
                let out = self.walk(s, j, arm_b);
                self.edge(out, join);
                if self.punct(j, ",") {
                    j += 1;
                }
            }
        }
        if !any_arm {
            self.edge(cur, join);
        }
        (close + 1, join)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::scope;

    fn cfg_of(src: &str, fname: &str) -> (Vec<Token>, Cfg) {
        let lx = lex(src);
        let sc = scope::analyze(&lx.tokens);
        let f = sc.fns.iter().find(|f| f.name == fname).expect("fn");
        let cfg = build(&lx.tokens, f.body_start, f.body_end);
        (lx.tokens, cfg)
    }

    fn block_idents(toks: &[Token], cfg: &Cfg, b: usize) -> Vec<String> {
        cfg.blocks[b]
            .ranges
            .iter()
            .flat_map(|&(s, e)| toks[s..e].iter())
            .filter(|t| t.kind == Kind::Ident)
            .map(|t| t.text.clone())
            .collect()
    }

    fn block_containing(toks: &[Token], cfg: &Cfg, ident: &str) -> usize {
        (0..cfg.blocks.len())
            .find(|&b| block_idents(toks, cfg, b).iter().any(|i| i == ident))
            .unwrap_or_else(|| panic!("{ident} not in any block"))
    }

    fn reaches(cfg: &Cfg, from: usize, to: usize) -> bool {
        let mut seen = vec![false; cfg.blocks.len()];
        let mut stack = vec![from];
        while let Some(b) = stack.pop() {
            if b == to {
                return true;
            }
            if seen[b] {
                continue;
            }
            seen[b] = true;
            stack.extend(cfg.blocks[b].succs.iter().copied());
        }
        false
    }

    #[test]
    fn if_else_arms_are_separate_and_both_reach_exit() {
        let (toks, cfg) =
            cfg_of("fn f(c: bool) { start(); if c { a(); } else { b(); } done(); }", "f");
        let ba = block_containing(&toks, &cfg, "a");
        let bb = block_containing(&toks, &cfg, "b");
        let bd = block_containing(&toks, &cfg, "done");
        assert_ne!(ba, bb);
        assert!(reaches(&cfg, ba, bd) && reaches(&cfg, bb, bd));
        assert!(reaches(&cfg, 0, cfg.exit));
        // `a` must not flow through `b`.
        assert!(!reaches(&cfg, ba, bb));
    }

    #[test]
    fn if_without_else_has_fallthrough_edge() {
        let (toks, cfg) = cfg_of("fn f(c: bool) { if c { a(); } done(); }", "f");
        let ba = block_containing(&toks, &cfg, "a");
        let bd = block_containing(&toks, &cfg, "done");
        let b0 = block_containing(&toks, &cfg, "c");
        // Both through-`a` and around-`a` paths reach `done`.
        assert!(reaches(&cfg, ba, bd));
        assert!(cfg.blocks[b0].succs.iter().any(|&s| s != ba && reaches(&cfg, s, bd)));
    }

    #[test]
    fn loops_have_back_edges_and_breaks_exit() {
        let (toks, cfg) =
            cfg_of("fn f() { loop { work(); if done() { break; } } after(); }", "f");
        let bw = block_containing(&toks, &cfg, "work");
        let bafter = block_containing(&toks, &cfg, "after");
        assert!(reaches(&cfg, bw, bw), "loop body must reach itself (back edge)");
        assert!(reaches(&cfg, bw, bafter));
    }

    #[test]
    fn while_loop_may_skip_body() {
        let (toks, cfg) = cfg_of("fn f(mut n: u32) { while n > 0 { body(); n -= 1; } end(); }", "f");
        let bb = block_containing(&toks, &cfg, "body");
        let be = block_containing(&toks, &cfg, "end");
        let bh = block_containing(&toks, &cfg, "n");
        assert!(reaches(&cfg, bb, bb));
        assert!(reaches(&cfg, bh, be));
        // The zero-iteration path: head reaches end without the body.
        assert!(cfg.blocks[bh].succs.iter().any(|&s| s != bb && reaches(&cfg, s, be)));
    }

    #[test]
    fn return_cuts_the_fallthrough_path() {
        let (toks, cfg) = cfg_of("fn f(c: bool) { if c { return early(); } late(); }", "f");
        let bearly = block_containing(&toks, &cfg, "early");
        let blate = block_containing(&toks, &cfg, "late");
        assert!(reaches(&cfg, bearly, cfg.exit));
        assert!(!reaches(&cfg, bearly, blate), "code after return is not a successor");
    }

    #[test]
    fn question_mark_forks_an_exit_edge() {
        let (toks, cfg) = cfg_of("fn f() -> Option<()> { risky()?; rest(); Some(()) }", "f");
        let br = block_containing(&toks, &cfg, "risky");
        assert!(cfg.blocks[br].succs.contains(&cfg.exit));
        let brest = block_containing(&toks, &cfg, "rest");
        assert!(reaches(&cfg, br, brest));
    }

    #[test]
    fn match_arms_fork_and_join() {
        let (toks, cfg) = cfg_of(
            "fn f(x: u32) { match x { 0 => zero(), 1 => { one(); } _ => other(), } tail(); }",
            "f",
        );
        let bz = block_containing(&toks, &cfg, "zero");
        let bo = block_containing(&toks, &cfg, "one");
        let bt = block_containing(&toks, &cfg, "tail");
        assert_ne!(bz, bo);
        assert!(reaches(&cfg, bz, bt) && reaches(&cfg, bo, bt));
        assert!(!reaches(&cfg, bz, bo));
    }

    #[test]
    fn closures_are_extracted_not_inlined() {
        let (toks, cfg) = cfg_of(
            "fn f(img: &I) { let send = |j: usize| { put(j); notify(j); }; send(0); \
             img.finish(team, |img| { inner(); }); }",
            "f",
        );
        // Closure bodies never appear in the enclosing blocks.
        for b in 0..cfg.blocks.len() {
            let ids = block_idents(&toks, &cfg, b);
            assert!(!ids.iter().any(|i| i == "put" || i == "inner"), "closure leaked: {ids:?}");
        }
        let named: Vec<_> = cfg.closures.iter().filter_map(|c| c.name.clone()).collect();
        assert_eq!(named, vec!["send".to_string()]);
        let fin = cfg.closures.iter().find(|c| c.arg_of.as_deref() == Some("finish")).unwrap();
        let body: Vec<_> = toks[fin.body.0..fin.body.1].iter().map(|t| t.text.as_str()).collect();
        assert!(body.contains(&"inner"));
    }

    #[test]
    fn expression_bodied_closure_in_iterator_chain() {
        let (toks, cfg) = cfg_of("fn f(v: &[u32]) { let s = v.iter().map(|x| x + 1).sum(); use_it(s); }", "f");
        let c = cfg.closures.iter().find(|c| c.arg_of.as_deref() == Some("map")).unwrap();
        let body: Vec<_> = toks[c.body.0..c.body.1].iter().map(|t| t.text.as_str()).collect();
        assert!(body.contains(&"x"));
        assert!(reaches(&cfg, 0, cfg.exit));
        let _ = block_containing(&toks, &cfg, "use_it");
    }

    #[test]
    fn continue_targets_the_loop_head() {
        let (toks, cfg) = cfg_of(
            "fn f() { for i in 0..10 { if skip(i) { continue; } body(i); } tail(); }",
            "f",
        );
        let bs = block_containing(&toks, &cfg, "skip");
        let bb = block_containing(&toks, &cfg, "body");
        let bt = block_containing(&toks, &cfg, "tail");
        assert!(reaches(&cfg, bs, bb) && reaches(&cfg, bb, bt));
        // The continue path cycles back: skip-block reaches itself.
        assert!(reaches(&cfg, bs, bs));
    }
}
