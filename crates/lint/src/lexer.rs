//! A small hand-rolled Rust lexer: just enough tokenization to make the
//! lint passes *token-aware* instead of line-grep heuristics.
//!
//! The lexer strips comments and string/char literals out of the token
//! stream (so `"Instant::now"` in a doc string or `// thread::sleep` in
//! prose can never trip a pattern) while recording comment text per line
//! (so `// SAFETY:` and `// lint:allow(...)` markers remain visible to
//! the passes). It is not a full Rust lexer — no float-suffix pedantry,
//! no shebang handling — but it handles everything that matters for
//! scanning this workspace: nested block comments, raw strings with
//! arbitrary `#` fences, byte strings, raw identifiers, and the
//! lifetime-vs-char-literal ambiguity.

use std::collections::BTreeMap;

/// Token classes the passes care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Identifier or keyword (`fn`, `unsafe`, `Ordering`, ...).
    Ident,
    /// Single punctuation character (`::` arrives as two `:` tokens).
    Punct,
    /// String literal of any flavor; payload text is dropped.
    Str,
    /// Char literal; payload dropped.
    Char,
    /// Numeric literal.
    Num,
    /// Lifetime or loop label (`'a`, `'outer`).
    Lifetime,
}

/// One token with its 1-indexed source line.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: Kind,
    /// Identifier text, punctuation character, or numeric text; empty
    /// for string/char literals (contents are deliberately discarded).
    pub text: String,
    pub line: u32,
}

/// Lexed file: the token stream plus the comment text touching each
/// line (markers like `SAFETY:` / `lint:allow(...)` live in comments).
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    /// 1-indexed line -> concatenated comment text on that line.
    pub comments: BTreeMap<u32, String>,
}

impl Lexed {
    /// Comment text on `line`, or "".
    pub fn comment_on(&self, line: u32) -> &str {
        self.comments.get(&line).map(String::as_str).unwrap_or("")
    }

    /// True if `needle` appears in a comment on `line` or the line above
    /// (the two placements `// lint:allow(...)` accepts).
    pub fn marker_at(&self, line: u32, needle: &str) -> bool {
        self.comment_on(line).contains(needle)
            || (line > 1 && self.comment_on(line - 1).contains(needle))
    }
}

/// Tokenize `src`.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;

    macro_rules! push {
        ($kind:expr, $text:expr) => {
            out.tokens.push(Token { kind: $kind, text: $text, line })
        };
    }

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                append_comment(&mut out.comments, line, &src[start..i]);
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                // Nested block comment; record text per spanned line.
                let mut depth = 1usize;
                i += 2;
                let mut seg_start = i;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        append_comment(&mut out.comments, line, &src[seg_start..i]);
                        line += 1;
                        i += 1;
                        seg_start = i;
                    } else if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                append_comment(&mut out.comments, line, &src[seg_start..i.min(b.len())]);
            }
            b'"' => {
                i = skip_plain_string(b, i, &mut line);
                push!(Kind::Str, String::new());
            }
            b'\'' => {
                // Lifetime/label vs char literal. `'a`, `'static` are
                // lifetimes (no closing quote right after the ident);
                // `'x'`, `'\n'` are char literals.
                let is_lifetime = match (b.get(i + 1), b.get(i + 2)) {
                    (Some(&n), after) => {
                        (n.is_ascii_alphabetic() || n == b'_')
                            && after != Some(&b'\'')
                    }
                    _ => false,
                };
                if is_lifetime {
                    i += 1;
                    let start = i;
                    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                        i += 1;
                    }
                    push!(Kind::Lifetime, src[start..i].to_string());
                } else {
                    i += 1; // opening quote
                    if b.get(i) == Some(&b'\\') {
                        i += 2; // escape + escaped char (covers \', \\, \n, \u{..} start)
                        while i < b.len() && b[i] != b'\'' {
                            i += 1;
                        }
                    } else if i < b.len() {
                        i += 1; // the char itself
                    }
                    if b.get(i) == Some(&b'\'') {
                        i += 1;
                    }
                    push!(Kind::Char, String::new());
                }
            }
            b'0'..=b'9' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                // Fractional part, but not the `..` of a range.
                if b.get(i) == Some(&b'.') && b.get(i + 1).is_some_and(u8::is_ascii_digit) {
                    i += 1;
                    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                        i += 1;
                    }
                }
                push!(Kind::Num, src[start..i].to_string());
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                let ident = &src[start..i];
                // String-literal prefixes and raw identifiers.
                match ident {
                    "r" | "b" | "br" | "rb" | "c" | "cr" if i < b.len() => {
                        if b[i] == b'"' {
                            i = skip_raw_or_plain(b, i, ident, &mut line);
                            push!(Kind::Str, String::new());
                            continue;
                        }
                        if b[i] == b'#' && ident.contains('r') {
                            // `r#"..."#` raw string vs `r#ident` raw ident.
                            let mut j = i;
                            while b.get(j) == Some(&b'#') {
                                j += 1;
                            }
                            if b.get(j) == Some(&b'"') {
                                i = skip_raw_string(b, j + 1, j - i, &mut line);
                                push!(Kind::Str, String::new());
                                continue;
                            }
                            if ident == "r" && j == i + 1 {
                                // raw identifier `r#match`
                                i = j;
                                let s2 = i;
                                while i < b.len()
                                    && (b[i].is_ascii_alphanumeric() || b[i] == b'_')
                                {
                                    i += 1;
                                }
                                push!(Kind::Ident, src[s2..i].to_string());
                                continue;
                            }
                        }
                        if ident == "b" && b[i] == b'\'' {
                            // byte char literal b'x'
                            i += 1;
                            if b.get(i) == Some(&b'\\') {
                                i += 2;
                                while i < b.len() && b[i] != b'\'' {
                                    i += 1;
                                }
                            } else if i < b.len() {
                                i += 1;
                            }
                            if b.get(i) == Some(&b'\'') {
                                i += 1;
                            }
                            push!(Kind::Char, String::new());
                            continue;
                        }
                        push!(Kind::Ident, ident.to_string());
                    }
                    _ => push!(Kind::Ident, ident.to_string()),
                }
            }
            _ => {
                push!(Kind::Punct, (c as char).to_string());
                i += 1;
            }
        }
    }
    out
}

fn append_comment(map: &mut BTreeMap<u32, String>, line: u32, text: &str) {
    if text.is_empty() {
        return;
    }
    let e = map.entry(line).or_default();
    if !e.is_empty() {
        e.push(' ');
    }
    e.push_str(text);
}

/// Skip a `"..."` literal starting at the opening quote; returns the
/// index just past the closing quote.
fn skip_plain_string(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    debug_assert_eq!(b[i], b'"');
    i += 1;
    while i < b.len() {
        match b[i] {
            b'"' => return i + 1,
            b'\\' => i += 2,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Skip `r"..."` (zero-fence raw string) or, for prefixes like `b`,
/// a plain escaped string.
fn skip_raw_or_plain(b: &[u8], i: usize, prefix: &str, line: &mut u32) -> usize {
    if prefix.contains('r') {
        skip_raw_string(b, i + 1, 0, line)
    } else {
        skip_plain_string(b, i, line)
    }
}

/// Skip a raw string whose body starts at `i` (just past the opening
/// quote) with `fence` trailing `#`s; returns the index past the close.
fn skip_raw_string(b: &[u8], mut i: usize, fence: usize, line: &mut u32) -> usize {
    while i < b.len() {
        if b[i] == b'\n' {
            *line += 1;
            i += 1;
            continue;
        }
        if b[i] == b'"' {
            let mut k = 0usize;
            while k < fence && b.get(i + 1 + k) == Some(&b'#') {
                k += 1;
            }
            if k == fence {
                return i + 1 + fence;
            }
        }
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == Kind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_never_yield_idents() {
        let src = r##"
            // prose mentioning Instant::now and thread::sleep
            /* block /* nested */ win_segment( */
            let s = "Instant::now";
            let r = r#"thread::sleep inside raw "quoted" text"#;
            let c = 'x';
            let b = b"bytes with win_segment(";
            real_ident();
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"real_ident".to_string()));
        for bad in ["Instant", "sleep", "win_segment"] {
            assert!(!ids.iter().any(|i| i == bad), "{bad} leaked: {ids:?}");
        }
    }

    #[test]
    fn comments_recorded_per_line_with_correct_numbers() {
        let src = "let a = 1; // SAFETY: fine\nlet b = 2;\n// lint:allow(unsafe)\nlet c;\n";
        let lx = lex(src);
        assert!(lx.comment_on(1).contains("SAFETY: fine"));
        assert_eq!(lx.comment_on(2), "");
        assert!(lx.marker_at(4, "lint:allow(unsafe)"));
        assert!(!lx.marker_at(2, "lint:allow(unsafe)"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let src = "fn f<'a>(x: &'a str) { let c = 'y'; let esc = '\\''; }";
        let lx = lex(src);
        let lifetimes: Vec<_> = lx
            .tokens
            .iter()
            .filter(|t| t.kind == Kind::Lifetime)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(lifetimes, vec!["a", "a"]);
        assert_eq!(
            lx.tokens.iter().filter(|t| t.kind == Kind::Char).count(),
            2
        );
    }

    #[test]
    fn raw_identifiers_and_numbers() {
        let lx = lex("let r#type = 0x1f_u64; let y = 1.5e3; let r = 0..10;");
        let ids: Vec<_> = lx
            .tokens
            .iter()
            .filter(|t| t.kind == Kind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert!(ids.contains(&"type"));
        let nums: Vec<_> = lx
            .tokens
            .iter()
            .filter(|t| t.kind == Kind::Num)
            .map(|t| t.text.as_str())
            .collect();
        assert!(nums.contains(&"0x1f_u64"));
        assert!(nums.contains(&"1.5e3"));
        // `0..10` must not swallow the range dots.
        assert!(nums.contains(&"0") && nums.contains(&"10"));
    }

    #[test]
    fn multiline_strings_keep_line_numbers() {
        let src = "let s = \"line\none\";\nmarker();\n";
        let lx = lex(src);
        let m = lx.tokens.iter().find(|t| t.text == "marker").unwrap();
        assert_eq!(m.line, 3);
    }
}
