//! Scope analysis over the token stream: brace depth, enclosing named
//! function, and — crucially — *brace-accurate* `#[cfg(test)]` regions.
//!
//! The old line-grep lint disarmed itself at the first `#[cfg(test)]`
//! line and stayed disarmed for the rest of the file, so any code after
//! a test module's closing brace escaped scanning. Here a `#[cfg(test)]`
//! attribute marks exactly the brace-delimited item that follows it
//! (module, function, impl), and scanning resumes the moment that item's
//! closing brace pops.

use crate::lexer::{Kind, Token};

/// A named function and the token range of its body (indices of the
/// opening and closing brace tokens, inclusive).
#[derive(Debug, Clone)]
pub struct FnInfo {
    pub name: String,
    pub body_start: usize,
    pub body_end: usize,
}

/// Per-token context computed in one pass.
#[derive(Debug, Default)]
pub struct Scopes {
    /// Token is inside (or in the signature of) a `#[cfg(test)]` item.
    pub in_test: Vec<bool>,
    /// Innermost enclosing named `fn`, as an index into `fns`.
    pub fn_of: Vec<Option<usize>>,
    /// Brace depth at the token.
    pub depth: Vec<u32>,
    pub fns: Vec<FnInfo>,
}

struct ScopeEntry {
    is_test: bool,
    fn_idx: Option<usize>,
}

/// True when the attribute token sequence `cfg(...)` gates on `test`
/// positively (`cfg(test)`, `cfg(all(test, ...))` — but not
/// `cfg(not(test))`, whose body is live in normal builds).
fn attr_is_cfg_test(idents: &[&str]) -> bool {
    idents.first() == Some(&"cfg")
        && idents.contains(&"test")
        && !idents.contains(&"not")
}

/// Analyze `tokens`, producing parallel context arrays.
pub fn analyze(tokens: &[Token]) -> Scopes {
    let n = tokens.len();
    let mut sc = Scopes {
        in_test: vec![false; n],
        fn_of: vec![None; n],
        depth: vec![0; n],
        fns: Vec::new(),
    };
    let mut stack: Vec<ScopeEntry> = Vec::new();
    let mut paren: i32 = 0;
    let mut bracket: i32 = 0;
    let mut pending_test = false;
    let mut pending_fn: Option<String> = None;
    // Item after the attr is brace-free-or-`use`-like; cancel at `;`.
    let mut pending_semi_item = false;

    let mut i = 0usize;
    while i < n {
        // Record context BEFORE processing the token so a closing brace
        // still belongs to the scope it closes.
        let in_test_now = pending_test || stack.iter().any(|s| s.is_test);
        let fn_now = stack.iter().rev().find_map(|s| s.fn_idx);
        sc.in_test[i] = in_test_now;
        sc.fn_of[i] = fn_now;
        sc.depth[i] = stack.len() as u32;

        let t = &tokens[i];
        match (t.kind, t.text.as_str()) {
            // Attribute: `#[...]` or `#![...]`. Consume it wholesale so
            // its internal brackets/parens don't disturb the counters.
            (Kind::Punct, "#") => {
                let mut j = i + 1;
                if matches!(tokens.get(j), Some(t) if t.kind == Kind::Punct && t.text == "!") {
                    j += 1;
                }
                if matches!(tokens.get(j), Some(t) if t.kind == Kind::Punct && t.text == "[") {
                    let mut depth = 0i32;
                    let mut idents: Vec<&str> = Vec::new();
                    while j < n {
                        let u = &tokens[j];
                        match (u.kind, u.text.as_str()) {
                            (Kind::Punct, "[") => depth += 1,
                            (Kind::Punct, "]") => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            (Kind::Ident, s) => idents.push(s),
                            _ => {}
                        }
                        j += 1;
                    }
                    if attr_is_cfg_test(&idents) {
                        pending_test = true;
                        pending_semi_item = false;
                    }
                    for k in i..=j.min(n - 1) {
                        sc.in_test[k] = in_test_now;
                        sc.fn_of[k] = fn_now;
                        sc.depth[k] = stack.len() as u32;
                    }
                    i = j + 1;
                    continue;
                }
            }
            (Kind::Ident, "fn") => {
                if let Some(next) = tokens.get(i + 1) {
                    if next.kind == Kind::Ident {
                        pending_fn = Some(next.text.clone());
                    }
                }
            }
            // `#[cfg(test)] use ...;` and friends: the gated item has no
            // body brace of its own; any `{...}` before the `;` (a use
            // list) must not swallow the pending-test marker.
            (Kind::Ident, "use" | "extern" | "static" | "type") if pending_test => {
                pending_semi_item = true;
            }
            (Kind::Punct, "(") => paren += 1,
            (Kind::Punct, ")") => paren -= 1,
            (Kind::Punct, "[") => bracket += 1,
            (Kind::Punct, "]") => bracket -= 1,
            (Kind::Punct, ";") if paren == 0 && bracket == 0 => {
                // Item without a body (trait method decl, use, static).
                if stack.last().is_none_or(|s| s.fn_idx.is_none() || pending_semi_item) {
                    pending_fn = None;
                }
                pending_test = false;
                pending_semi_item = false;
            }
            (Kind::Punct, "{") => {
                let fn_idx = if paren == 0 && !pending_semi_item {
                    pending_fn.take().map(|name| {
                        sc.fns.push(FnInfo {
                            name,
                            body_start: i,
                            body_end: usize::MAX,
                        });
                        sc.fns.len() - 1
                    })
                } else {
                    None
                };
                let is_test = pending_test && paren == 0 && !pending_semi_item;
                if is_test {
                    pending_test = false;
                }
                stack.push(ScopeEntry { is_test, fn_idx });
                // The opening brace itself belongs to the new scope.
                sc.in_test[i] = in_test_now || is_test;
                if let Some(fi) = fn_idx {
                    sc.fn_of[i] = Some(fi);
                }
            }
            (Kind::Punct, "}") => {
                if let Some(e) = stack.pop() {
                    if let Some(fi) = e.fn_idx {
                        sc.fns[fi].body_end = i;
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    // Unterminated bodies (shouldn't happen on rustc-valid input).
    for f in &mut sc.fns {
        if f.body_end == usize::MAX {
            f.body_end = n.saturating_sub(1);
        }
    }
    sc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn ctx(src: &str) -> (Vec<Token>, Scopes) {
        let lx = lex(src);
        let sc = analyze(&lx.tokens);
        (lx.tokens, sc)
    }

    fn test_flag_at(src: &str, ident: &str) -> bool {
        let (toks, sc) = ctx(src);
        let i = toks
            .iter()
            .position(|t| t.text == ident)
            .unwrap_or_else(|| panic!("{ident} not found"));
        sc.in_test[i]
    }

    #[test]
    fn cfg_test_region_ends_at_closing_brace() {
        let src = "
            fn live_before() { a(); }
            #[cfg(test)]
            mod tests {
                fn t() { inside(); }
            }
            fn live_after() { after(); }
        ";
        assert!(!test_flag_at(src, "a"));
        assert!(test_flag_at(src, "inside"));
        // The regression the old first-`#[cfg(test)]`-line heuristic had:
        // code after the test module must be scanned again.
        assert!(!test_flag_at(src, "after"));
    }

    #[test]
    fn cfg_not_test_is_live_code() {
        let src = "#[cfg(not(test))] fn f() { body(); }";
        assert!(!test_flag_at(src, "body"));
    }

    #[test]
    fn cfg_test_use_does_not_disarm_rest_of_file() {
        let src = "
            #[cfg(test)]
            use helpers::{a, b};
            fn live() { after_use(); }
        ";
        assert!(!test_flag_at(src, "after_use"));
    }

    #[test]
    fn cfg_test_single_fn_scopes_only_that_fn() {
        let src = "
            #[cfg(test)]
            fn helper() { inside(); }
            fn live() { outside(); }
        ";
        assert!(test_flag_at(src, "inside"));
        assert!(!test_flag_at(src, "outside"));
    }

    #[test]
    fn enclosing_fn_covers_nested_closures() {
        let src = "
            fn outer() {
                let f = |x: u32| { deep_call(); };
                f(1);
            }
        ";
        let (toks, sc) = ctx(src);
        let i = toks.iter().position(|t| t.text == "deep_call").unwrap();
        let fi = sc.fn_of[i].expect("inside a fn");
        assert_eq!(sc.fns[fi].name, "outer");
    }

    #[test]
    fn fn_body_ranges_are_tight() {
        let src = "fn a() { one(); } fn b() { two(); }";
        let (toks, sc) = ctx(src);
        assert_eq!(sc.fns.len(), 2);
        let names: Vec<_> = sc.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b"]);
        let a = &sc.fns[0];
        let body: Vec<_> = toks[a.body_start..=a.body_end]
            .iter()
            .map(|t| t.text.as_str())
            .collect();
        assert!(body.contains(&"one") && !body.contains(&"two"));
    }

    #[test]
    fn trait_method_decl_without_body_does_not_leak() {
        let src = "trait T { fn decl(x: [u8; 4]); } fn real() { body(); }";
        let (toks, sc) = ctx(src);
        let i = toks.iter().position(|t| t.text == "body").unwrap();
        assert_eq!(sc.fns[sc.fn_of[i].unwrap()].name, "real");
    }
}
