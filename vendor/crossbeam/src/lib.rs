//! Minimal in-tree stand-in for the `crossbeam` crate, providing the two
//! pieces this workspace uses: an unbounded MPMC channel whose `Sender`
//! and `Receiver` are both `Sync` (unlike `std::sync::mpsc`), and a
//! concurrent `SegQueue`. Built on `Mutex` + `Condvar`; correctness over
//! raw throughput, which is fine for a simulated fabric.

pub mod channel {
    //! Unbounded MPMC channel with `crossbeam-channel`'s API shape.

    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Inner<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Deadline elapsed with no message.
        Timeout,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    /// Sending half; clonable and `Sync`.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// Receiving half; clonable and `Sync`.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    impl<T> Inner<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
            match self.state.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Enqueue `t`; fails only if every `Receiver` has been dropped.
        pub fn send(&self, t: T) -> Result<(), SendError<T>> {
            let mut st = self.inner.lock();
            if st.receivers == 0 {
                return Err(SendError(t));
            }
            st.queue.push_back(t);
            drop(st);
            self.inner.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.lock().senders += 1;
            Sender {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.inner.lock();
            st.senders -= 1;
            let last = st.senders == 0;
            drop(st);
            if last {
                self.inner.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.inner.lock();
            match st.queue.pop_front() {
                Some(t) => Ok(t),
                None if st.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocking receive; fails once the channel is empty and all
        /// senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.inner.lock();
            loop {
                if let Some(t) = st.queue.pop_front() {
                    return Ok(t);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = match self.inner.ready.wait(st) {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                };
            }
        }

        /// Blocking receive with a deadline.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.inner.lock();
            loop {
                if let Some(t) = st.queue.pop_front() {
                    return Ok(t);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (g, _res) = match self.inner.ready.wait_timeout(st, deadline - now) {
                    Ok(r) => r,
                    Err(p) => p.into_inner(),
                };
                st = g;
            }
        }

        /// Number of queued messages (racy snapshot).
        pub fn len(&self) -> usize {
            self.inner.lock().queue.len()
        }

        /// Whether the queue is currently empty (racy snapshot).
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.lock().receivers += 1;
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.inner.lock().receivers -= 1;
        }
    }
}

pub mod queue {
    //! Concurrent queue with `crossbeam-queue`'s `SegQueue` API shape.

    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// Unbounded MPMC FIFO queue usable through a shared reference.
    #[derive(Debug, Default)]
    pub struct SegQueue<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> SegQueue<T> {
        /// Create an empty queue.
        pub fn new() -> Self {
            SegQueue {
                inner: Mutex::new(VecDeque::new()),
            }
        }

        fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            match self.inner.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            }
        }

        /// Push to the back.
        pub fn push(&self, t: T) {
            self.lock().push_back(t);
        }

        /// Pop from the front.
        pub fn pop(&self) -> Option<T> {
            self.lock().pop_front()
        }

        /// Number of queued elements (racy snapshot).
        pub fn len(&self) -> usize {
            self.lock().len()
        }

        /// Whether the queue is currently empty (racy snapshot).
        pub fn is_empty(&self) -> bool {
            self.lock().is_empty()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{self, RecvTimeoutError, TryRecvError};
    use super::queue::SegQueue;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn channel_send_recv_across_threads() {
        let (tx, rx) = channel::unbounded();
        let tx = Arc::new(tx); // Sender must be usable via Arc (Sync).
        let tx2 = Arc::clone(&tx);
        let h = std::thread::spawn(move || tx2.send(42).unwrap());
        assert_eq!(rx.recv().unwrap(), 42);
        h.join().unwrap();
    }

    #[test]
    fn try_recv_and_disconnect() {
        let (tx, rx) = channel::unbounded::<u8>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        assert!(rx.recv().is_err());
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = channel::unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn segqueue_fifo() {
        let q = SegQueue::new();
        q.push(1);
        q.push(2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }
}
