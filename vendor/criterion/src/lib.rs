//! Minimal in-tree stand-in for the `criterion` crate.
//!
//! Implements the API surface this workspace's benches use — benchmark
//! groups with chained configuration, `bench_function` /
//! `bench_with_input`, `Bencher::iter` / `iter_custom`, throughput
//! annotations, and the `criterion_group!` / `criterion_main!` macros.
//! Measurement is deliberately simple: a fixed small number of samples
//! with the mean printed per benchmark. No statistics, no HTML reports.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Samples per benchmark (kept small: the workloads spawn whole
/// simulated universes per iteration).
const SAMPLES: u32 = 3;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _c: self,
        }
    }
}

/// Throughput annotation attached to subsequent benchmarks in a group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Operations per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Identifier combining a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Parameter-only identifier.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// A group of benchmarks sharing a name prefix and configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; sampling is fixed at [`SAMPLES`].
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility; no warm-up is performed.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for compatibility; measurement is per-sample, not timed.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run a benchmark closure against a [`Bencher`].
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        for _ in 0..SAMPLES {
            let mut b = Bencher {
                elapsed: Duration::ZERO,
                iters: 0,
            };
            f(&mut b);
            total += b.elapsed;
            iters += b.iters;
        }
        self.report(&id.to_string(), total, iters);
        self
    }

    /// Run a benchmark closure with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Close the group (reports are emitted eagerly; this is a no-op).
    pub fn finish(&mut self) {}

    fn report(&self, id: &str, total: Duration, iters: u64) {
        let iters = iters.max(1);
        let per_iter = total / iters as u32;
        match self.throughput {
            Some(Throughput::Elements(n)) if per_iter > Duration::ZERO => {
                let rate = n as f64 / per_iter.as_secs_f64();
                println!(
                    "{}/{}: {:?}/iter ({:.3e} elem/s)",
                    self.name, id, per_iter, rate
                );
            }
            Some(Throughput::Bytes(n)) if per_iter > Duration::ZERO => {
                let rate = n as f64 / per_iter.as_secs_f64();
                println!(
                    "{}/{}: {:?}/iter ({:.3e} B/s)",
                    self.name, id, per_iter, rate
                );
            }
            _ => println!("{}/{}: {:?}/iter", self.name, id, per_iter),
        }
    }
}

/// Timing harness handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Time `f`, called once per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        let out = f();
        self.elapsed += start.elapsed();
        self.iters += 1;
        drop(black_box(out));
    }

    /// Hand the iteration count to `f`, which returns the measured time
    /// for that many iterations.
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        self.elapsed += f(1);
        self.iters += 1;
    }
}

/// Opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running one or more [`criterion_group!`] groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(1));
        group.throughput(Throughput::Elements(4));
        let mut calls = 0;
        group.bench_function(BenchmarkId::new("f", 2), |b| {
            b.iter(|| calls += 1);
        });
        group.bench_function("custom", |b| {
            b.iter_custom(|iters| {
                assert_eq!(iters, 1);
                Duration::from_micros(5)
            });
        });
        group.finish();
        assert_eq!(calls, SAMPLES);
    }
}
