//! Minimal in-tree stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace uses: the `proptest!` macro with an
//! optional `#![proptest_config(..)]` header, integer-range and `any::<T>()`
//! strategies, tuple strategies, `collection::vec`, and the
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!` macros. Cases are
//! generated from a deterministic per-test RNG (seeded by test name and
//! case index) so failures are reproducible; there is no shrinking.

use std::marker::PhantomData;
use std::ops::Range;

/// Per-run configuration. Only `cases` is consulted.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run per test.
    pub cases: u32,
    /// Accepted for source compatibility; unused (no shrinking).
    pub max_shrink_iters: u32,
    /// Accepted for source compatibility; unused.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
            max_global_rejects: 65536,
        }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed; the case is skipped, not failed.
    Reject,
    /// A `prop_assert!`-family assertion failed.
    Fail(String),
}

/// Deterministic splitmix64 RNG, seeded per (test name, case index).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for case number `case` of the named test.
    pub fn for_case(name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x1_0000_0000_01b3);
        }
        TestRng {
            state: h ^ (u64::from(case) + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)` (`0` when `n == 0`); modulo bias is
    /// acceptable for test-case generation.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

/// A generator of values for one `proptest!` argument.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Types with a canonical "anything goes" strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f32::from_bits(rng.next_u64() as u32)
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// Strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

/// Length specification for [`collection::vec`]: exact or half-open range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

pub mod collection {
    //! Collection strategies (`proptest::collection::vec`).

    use super::{SizeRange, Strategy, TestRng};

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// A `Vec` whose length is drawn from `size` and whose elements are
    /// drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Run deterministic random test cases over strategy-drawn arguments.
///
/// Supports the `proptest` 1.x surface used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]
///     #[test]
///     fn prop(x in 0usize..10, v in collection::vec(any::<u8>(), 0..8)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr;
     $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*
    ) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __case: u32 = 0;
            let mut __accepted: u32 = 0;
            let mut __rejected: u32 = 0;
            while __accepted < __config.cases {
                let mut __rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                __case += 1;
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match __outcome {
                    ::std::result::Result::Ok(()) => __accepted += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => {
                        __rejected += 1;
                        assert!(
                            __rejected < 4096,
                            "proptest: too many prop_assume! rejections in {}",
                            stringify!($name)
                        );
                    }
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case {} of {} failed: {}",
                            __case - 1,
                            stringify!($name),
                            msg
                        );
                    }
                }
            }
        }
    )*};
}

/// Assert inside a `proptest!` body; records a failure for this case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                        "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
                        __l, __r
                    )));
                }
            }
        }
    };
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if *__l == *__r {
                    return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                        "assertion failed: `left != right`\n  both: `{:?}`",
                        __l
                    )));
                }
            }
        }
    };
}

/// Skip this case (counted as a rejection, not a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude::*`.
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any, Arbitrary,
        ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in -10i64..10) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-10..10).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_size(v in crate::collection::vec(any::<u8>(), 2..5), w in crate::collection::vec(any::<u64>(), 7)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert_eq!(w.len(), 7);
        }

        #[test]
        fn tuples_and_assume(ab in (0usize..4, 0usize..4)) {
            let (a, b) = ab;
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }
    }

    #[test]
    fn rng_is_deterministic() {
        let mut a = super::TestRng::for_case("t", 3);
        let mut b = super::TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = super::TestRng::for_case("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
