//! Minimal in-tree stand-in for `parking_lot`, wrapping the std locks with
//! `parking_lot`'s guard-returning (non-`Result`) API. Poisoning is
//! deliberately ignored: a panicking holder does not wedge other threads,
//! matching `parking_lot` semantics closely enough for this workspace.

use std::sync::{self, LockResult};

/// Strip std's poison wrapper, recovering the guard either way.
fn unpoison<G>(r: LockResult<G>) -> G {
    match r {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

/// Mutual exclusion lock with `parking_lot`'s infallible `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(t: T) -> Self {
        Mutex(sync::Mutex::new(t))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        unpoison(self.0.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        unpoison(self.0.lock())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.0.get_mut())
    }
}

/// Reader-writer lock with `parking_lot`'s infallible `read()`/`write()`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(t: T) -> Self {
        RwLock(sync::RwLock::new(t))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        unpoison(self.0.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        unpoison(self.0.read())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        unpoison(self.0.write())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.0.get_mut())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn poisoned_lock_still_usable() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
