//! Minimal in-tree stand-in for the `bytes` crate, providing the small
//! API surface this workspace uses: a cheaply clonable, reference-counted
//! immutable byte buffer. Clones share the same backing storage (pointer
//! equality of `as_ptr()` across clones is guaranteed), which is the
//! property the fabric relies on for zero-copy packet delivery.

use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable, immutable, reference-counted slice of bytes.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// Copy `data` into a new reference-counted buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.data[..] == *other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.data.hash(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_storage() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        assert_eq!(a.as_ptr(), b.as_ptr());
        assert_eq!(&b[..], &[1, 2, 3]);
    }

    #[test]
    fn empty_and_slice_ops() {
        let e = Bytes::new();
        assert!(e.is_empty());
        let c = Bytes::copy_from_slice(&[9, 8]);
        assert_eq!(c.len(), 2);
        assert_eq!(&c[1..], &[8]);
    }
}
